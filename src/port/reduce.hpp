// Reduction objects for the rperf portability layer.
//
// Reducers follow the RAJA idiom: a reducer object is captured by value in a
// kernel lambda, combined into from any thread, and read on the host after
// the loop completes:
//
//   ReduceSum<omp_parallel_for_exec, double> sum(0.0);
//   forall<omp_parallel_for_exec>(RangeSegment(0, n),
//                                 [=](Index_type i) { sum += x[i] * y[i]; });
//   double dot = sum.get();
//
// The OpenMP reducers accumulate into per-thread cache-line-padded slots to
// avoid false sharing; `get()` folds the slots. Copies of a reducer share
// state through a shared_ptr so capture-by-value works as expected.
#pragma once

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include <omp.h>

#include "port/policy.hpp"
#include "port/range.hpp"

namespace rperf::port {

namespace detail {

inline int max_threads() { return omp_get_max_threads(); }
inline int thread_num() { return omp_get_thread_num(); }

/// Cache-line padded accumulator slot (avoids false sharing across threads).
template <typename T>
struct alignas(64) PaddedSlot {
  T value;
};

template <typename T, typename Op>
struct ReduceState {
  explicit ReduceState(T init, T identity)
      : initial(init), slots(static_cast<std::size_t>(max_threads())) {
    for (auto& s : slots) s.value = identity;
  }
  T initial;
  std::vector<PaddedSlot<T>> slots;
};

}  // namespace detail

/// Generic reducer; Op is a stateless callable combining two T values.
template <typename Policy, typename T, typename Op>
class Reducer {
  static_assert(is_execution_policy_v<Policy>,
                "Reducer requires an execution policy");

 public:
  Reducer(T init, T identity, Op op = Op{})
      : state_(std::make_shared<detail::ReduceState<T, Op>>(init, identity)),
        identity_(identity),
        op_(op) {}

  /// Combine a value from the current thread.
  void combine(const T& v) const {
    auto& slot = state_->slots[static_cast<std::size_t>(
        is_openmp_policy_v<Policy> ? detail::thread_num() : 0)];
    slot.value = op_(slot.value, v);
  }

  /// Fold all thread-local partials with the initial value.
  [[nodiscard]] T get() const {
    T result = state_->initial;
    for (const auto& s : state_->slots) result = op_(result, s.value);
    return result;
  }

  /// Reset thread partials and replace the initial value.
  void reset(T init) {
    state_->initial = init;
    for (auto& s : state_->slots) s.value = identity_;
  }

 protected:
  std::shared_ptr<detail::ReduceState<T, Op>> state_;
  T identity_;
  Op op_;
};

namespace detail {
template <typename T>
struct SumOp {
  T operator()(const T& a, const T& b) const { return a + b; }
};
template <typename T>
struct MinOp {
  T operator()(const T& a, const T& b) const { return b < a ? b : a; }
};
template <typename T>
struct MaxOp {
  T operator()(const T& a, const T& b) const { return a < b ? b : a; }
};
}  // namespace detail

template <typename Policy, typename T>
class ReduceSum : public Reducer<Policy, T, detail::SumOp<T>> {
  using Base = Reducer<Policy, T, detail::SumOp<T>>;

 public:
  explicit ReduceSum(T init = T{}) : Base(init, T{}) {}
  const ReduceSum& operator+=(const T& v) const {
    this->combine(v);
    return *this;
  }
};

template <typename Policy, typename T>
class ReduceMin : public Reducer<Policy, T, detail::MinOp<T>> {
  using Base = Reducer<Policy, T, detail::MinOp<T>>;

 public:
  explicit ReduceMin(T init = std::numeric_limits<T>::max())
      : Base(init, std::numeric_limits<T>::max()) {}
  const ReduceMin& min(const T& v) const {
    this->combine(v);
    return *this;
  }
};

template <typename Policy, typename T>
class ReduceMax : public Reducer<Policy, T, detail::MaxOp<T>> {
  using Base = Reducer<Policy, T, detail::MaxOp<T>>;

 public:
  explicit ReduceMax(T init = std::numeric_limits<T>::lowest())
      : Base(init, std::numeric_limits<T>::lowest()) {}
  const ReduceMax& max(const T& v) const {
    this->combine(v);
    return *this;
  }
};

/// Min-with-location reducer: tracks the smallest value and its index.
/// Ties resolve to the smallest index, independent of thread count.
template <typename Policy, typename T>
class ReduceMinLoc {
  struct ValLoc {
    T val;
    Index_type loc;
  };
  struct MinLocOp {
    ValLoc operator()(const ValLoc& a, const ValLoc& b) const {
      if (b.val < a.val) return b;
      if (a.val < b.val) return a;
      return b.loc < a.loc ? b : a;
    }
  };

 public:
  ReduceMinLoc(T init = std::numeric_limits<T>::max(), Index_type loc = -1)
      : reducer_(ValLoc{init, loc},
                 ValLoc{std::numeric_limits<T>::max(), -1}) {}

  const ReduceMinLoc& minloc(const T& v, Index_type loc) const {
    reducer_.combine(ValLoc{v, loc});
    return *this;
  }
  [[nodiscard]] T get() const { return reducer_.get().val; }
  [[nodiscard]] Index_type getLoc() const { return reducer_.get().loc; }
  void reset(T init, Index_type loc = -1) { reducer_.reset(ValLoc{init, loc}); }

 private:
  Reducer<Policy, ValLoc, MinLocOp> reducer_;
};

/// Max-with-location reducer; ties resolve to the smallest index.
template <typename Policy, typename T>
class ReduceMaxLoc {
  struct ValLoc {
    T val;
    Index_type loc;
  };
  struct MaxLocOp {
    ValLoc operator()(const ValLoc& a, const ValLoc& b) const {
      if (a.val < b.val) return b;
      if (b.val < a.val) return a;
      return b.loc < a.loc ? b : a;
    }
  };

 public:
  ReduceMaxLoc(T init = std::numeric_limits<T>::lowest(), Index_type loc = -1)
      : reducer_(ValLoc{init, loc},
                 ValLoc{std::numeric_limits<T>::lowest(), -1}) {}

  const ReduceMaxLoc& maxloc(const T& v, Index_type loc) const {
    reducer_.combine(ValLoc{v, loc});
    return *this;
  }
  [[nodiscard]] T get() const { return reducer_.get().val; }
  [[nodiscard]] Index_type getLoc() const { return reducer_.get().loc; }
  void reset(T init, Index_type loc = -1) { reducer_.reset(ValLoc{init, loc}); }

 private:
  Reducer<Policy, ValLoc, MaxLocOp> reducer_;
};

}  // namespace rperf::port
