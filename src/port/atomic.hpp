// Portable atomic read-modify-write operations.
//
// These wrap std::atomic_ref so kernels can express atomics on plain arrays
// without changing storage types — matching how portability layers expose
// `atomicAdd(&x[i], v)` across backends. All operations use relaxed memory
// order: the kernels only need atomicity of the arithmetic, and each loop is
// followed by an implicit barrier (end of parallel region) that publishes
// results.
#pragma once

#include <atomic>
#include <type_traits>

namespace rperf::port {

template <typename T>
inline T atomicAdd(T* address, T value) {
  static_assert(std::atomic_ref<T>::is_always_lock_free,
                "atomicAdd requires a lock-free atomic_ref");
  return std::atomic_ref<T>(*address).fetch_add(value,
                                                std::memory_order_relaxed);
}

template <typename T>
inline T atomicSub(T* address, T value) {
  return std::atomic_ref<T>(*address).fetch_sub(value,
                                                std::memory_order_relaxed);
}

template <typename T>
inline T atomicExchange(T* address, T value) {
  return std::atomic_ref<T>(*address).exchange(value,
                                               std::memory_order_relaxed);
}

/// Atomic min via compare-exchange loop; returns the previous value.
template <typename T>
inline T atomicMin(T* address, T value) {
  std::atomic_ref<T> ref(*address);
  T old = ref.load(std::memory_order_relaxed);
  while (value < old &&
         !ref.compare_exchange_weak(old, value, std::memory_order_relaxed)) {
  }
  return old;
}

/// Atomic max via compare-exchange loop; returns the previous value.
template <typename T>
inline T atomicMax(T* address, T value) {
  std::atomic_ref<T> ref(*address);
  T old = ref.load(std::memory_order_relaxed);
  while (old < value &&
         !ref.compare_exchange_weak(old, value, std::memory_order_relaxed)) {
  }
  return old;
}

/// fetch_add for floating point: atomic_ref supports it directly in C++20.
inline double atomicAdd(double* address, double value) {
  return std::atomic_ref<double>(*address).fetch_add(
      value, std::memory_order_relaxed);
}

inline float atomicAdd(float* address, float value) {
  return std::atomic_ref<float>(*address).fetch_add(value,
                                                    std::memory_order_relaxed);
}

}  // namespace rperf::port
