// TypedIndexSet — a heterogeneous collection of iteration segments.
//
// Mirrors RAJA's IndexSet: application meshes are often described as a few
// contiguous ranges (structured interior) plus irregular index lists
// (boundaries, mixed-material zones). An IndexSet executes all of them
// under one `forall`, preserving segment order under sequential policies.
#pragma once

#include <variant>
#include <vector>

#include "port/forall.hpp"
#include "port/range.hpp"

namespace rperf::port {

class TypedIndexSet {
 public:
  using Segment = std::variant<RangeSegment, RangeStrideSegment, ListSegment>;

  TypedIndexSet() = default;

  void push_back(RangeSegment seg) { segments_.emplace_back(seg); }
  void push_back(RangeStrideSegment seg) { segments_.emplace_back(seg); }
  void push_back(ListSegment seg) { segments_.emplace_back(std::move(seg)); }

  [[nodiscard]] std::size_t num_segments() const { return segments_.size(); }
  [[nodiscard]] const Segment& segment(std::size_t i) const {
    return segments_.at(i);
  }

  /// Total number of iterations across all segments.
  [[nodiscard]] Index_type size() const {
    Index_type total = 0;
    for (const auto& s : segments_) {
      std::visit([&](const auto& seg) { total += seg.size(); }, s);
    }
    return total;
  }

 private:
  std::vector<Segment> segments_;
};

/// Execute the body over every segment of the index set, segment by
/// segment, each under the given policy.
template <typename Policy, typename Body>
inline void forall(const TypedIndexSet& iset, Body&& body) {
  for (std::size_t s = 0; s < iset.num_segments(); ++s) {
    std::visit(
        [&](const auto& seg) { forall<Policy>(seg, body); },
        iset.segment(s));
  }
}

}  // namespace rperf::port
