// Execution policy tags for the rperf portability layer.
//
// A policy is a zero-size tag type selecting how `forall`, reducers, scans,
// and sorts execute. This mirrors the policy mechanism of performance
// portability layers such as RAJA: kernels are written once against a
// lambda-based API and dispatched to a backend at compile time.
#pragma once

#include <type_traits>

namespace rperf::port {

/// Sequential execution, no vectorization hints.
struct seq_exec {
  static constexpr const char* name = "seq";
};

/// Sequential execution with a SIMD vectorization hint on the loop.
struct simd_exec {
  static constexpr const char* name = "simd";
};

/// Parallel execution across OpenMP threads (parallel for).
struct omp_parallel_for_exec {
  static constexpr const char* name = "omp_parallel_for";
};

/// Parallel execution with static schedule and a SIMD hint on the body.
struct omp_parallel_for_simd_exec {
  static constexpr const char* name = "omp_parallel_for_simd";
};

template <typename T>
inline constexpr bool is_sequential_policy_v =
    std::is_same_v<T, seq_exec> || std::is_same_v<T, simd_exec>;

template <typename T>
inline constexpr bool is_openmp_policy_v =
    std::is_same_v<T, omp_parallel_for_exec> ||
    std::is_same_v<T, omp_parallel_for_simd_exec>;

template <typename T>
inline constexpr bool is_execution_policy_v =
    is_sequential_policy_v<T> || is_openmp_policy_v<T>;

}  // namespace rperf::port
