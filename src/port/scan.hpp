// Parallel prefix sums (scans) for the rperf portability layer.
//
// Sequential policies use a plain running sum. OpenMP policies use the
// classic three-phase blocked algorithm: per-thread local scan, exclusive
// scan of block totals, then per-thread offset fix-up. The result is
// identical to the sequential scan for associative/commutative ops on
// integers; for floating point the usual reassociation caveats apply.
#pragma once

#include <vector>

#include <omp.h>

#include "port/policy.hpp"
#include "port/range.hpp"

namespace rperf::port {

namespace detail {

template <typename T>
void scan_seq(const T* in, T* out, Index_type n, T init, bool exclusive) {
  T running = init;
  if (exclusive) {
    for (Index_type i = 0; i < n; ++i) {
      out[i] = running;
      running += in[i];
    }
  } else {
    for (Index_type i = 0; i < n; ++i) {
      running += in[i];
      out[i] = running;
    }
  }
}

template <typename T>
void scan_omp(const T* in, T* out, Index_type n, T init, bool exclusive) {
  const int nthreads = omp_get_max_threads();
  if (n < 4 * nthreads) {  // not worth parallelizing
    scan_seq(in, out, n, init, exclusive);
    return;
  }
  std::vector<T> block_totals(static_cast<std::size_t>(nthreads) + 1, T{});
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    const Index_type chunk = (n + nthreads - 1) / nthreads;
    const Index_type begin = tid * chunk;
    const Index_type end = std::min<Index_type>(begin + chunk, n);

    // Phase 1: local scan of this thread's block.
    T local = T{};
    for (Index_type i = begin; i < end; ++i) {
      if (exclusive) {
        out[i] = local;
        local += in[i];
      } else {
        local += in[i];
        out[i] = local;
      }
    }
    block_totals[static_cast<std::size_t>(tid) + 1] = local;

#pragma omp barrier
#pragma omp single
    {
      // Phase 2: exclusive scan of block totals.
      T running = init;
      for (int t = 0; t <= nthreads; ++t) {
        T next = block_totals[static_cast<std::size_t>(t)];
        block_totals[static_cast<std::size_t>(t)] = running;
        running += next;
      }
    }

    // Phase 3: add the block offset.
    const T offset = block_totals[static_cast<std::size_t>(tid) + 1];
    for (Index_type i = begin; i < end; ++i) {
      out[i] += offset;
    }
  }
}

}  // namespace detail

/// out[i] = init + in[0] + ... + in[i-1]
template <typename Policy, typename T>
inline void exclusive_scan(const T* in, T* out, Index_type n, T init = T{}) {
  if constexpr (is_sequential_policy_v<Policy>) {
    detail::scan_seq(in, out, n, init, /*exclusive=*/true);
  } else {
    detail::scan_omp(in, out, n, init, /*exclusive=*/true);
  }
}

/// out[i] = in[0] + ... + in[i]
template <typename Policy, typename T>
inline void inclusive_scan(const T* in, T* out, Index_type n) {
  if constexpr (is_sequential_policy_v<Policy>) {
    detail::scan_seq(in, out, n, T{}, /*exclusive=*/false);
  } else {
    detail::scan_omp(in, out, n, T{}, /*exclusive=*/false);
  }
}

}  // namespace rperf::port
