#include "suite/types.hpp"

#include <stdexcept>

namespace rperf::suite {

std::string to_string(GroupID g) {
  switch (g) {
    case GroupID::Algorithm: return "Algorithm";
    case GroupID::Apps: return "Apps";
    case GroupID::Basic: return "Basic";
    case GroupID::Comm: return "Comm";
    case GroupID::Lcals: return "Lcals";
    case GroupID::Polybench: return "Polybench";
    case GroupID::Stream: return "Stream";
  }
  return "?";
}

std::string to_string(VariantID v) {
  switch (v) {
    case VariantID::Base_Seq: return "Base_Seq";
    case VariantID::Lambda_Seq: return "Lambda_Seq";
    case VariantID::RAJA_Seq: return "RAJA_Seq";
    case VariantID::Base_OpenMP: return "Base_OpenMP";
    case VariantID::Lambda_OpenMP: return "Lambda_OpenMP";
    case VariantID::RAJA_OpenMP: return "RAJA_OpenMP";
  }
  return "?";
}

std::string to_string(Complexity c) {
  switch (c) {
    case Complexity::N: return "n";
    case Complexity::N_log_N: return "n lg n";
    case Complexity::N_3_2: return "n^3/2";
    case Complexity::N_2_3: return "n^2/3";
  }
  return "?";
}

std::string to_string(FeatureID f) {
  switch (f) {
    case FeatureID::Forall: return "Forall";
    case FeatureID::Kernel: return "Kernel";
    case FeatureID::Sort: return "Sort";
    case FeatureID::Scan: return "Scan";
    case FeatureID::Reduction: return "Reduction";
    case FeatureID::Atomic: return "Atomic";
    case FeatureID::View: return "View";
    case FeatureID::Workgroup: return "Workgroup";
  }
  return "?";
}

std::string to_string(RunStatus s) {
  switch (s) {
    case RunStatus::Passed: return "Passed";
    case RunStatus::Failed: return "Failed";
    case RunStatus::ChecksumInvalid: return "ChecksumInvalid";
    case RunStatus::TimedOut: return "TimedOut";
    case RunStatus::Skipped: return "Skipped";
    case RunStatus::Crashed: return "Crashed";
    case RunStatus::OutOfMemory: return "OutOfMemory";
    case RunStatus::Killed: return "Killed";
  }
  return "?";
}

std::string to_string(IsolationMode m) {
  switch (m) {
    case IsolationMode::None: return "none";
    case IsolationMode::Kernel: return "kernel";
    case IsolationMode::Cell: return "cell";
  }
  return "?";
}

const std::vector<RunStatus>& all_run_statuses() {
  static const std::vector<RunStatus> statuses = {
      RunStatus::Passed,      RunStatus::Failed,
      RunStatus::ChecksumInvalid, RunStatus::TimedOut,
      RunStatus::Skipped,     RunStatus::Crashed,
      RunStatus::OutOfMemory, RunStatus::Killed};
  return statuses;
}

const std::vector<GroupID>& all_groups() {
  static const std::vector<GroupID> groups = {
      GroupID::Algorithm, GroupID::Apps,      GroupID::Basic, GroupID::Comm,
      GroupID::Lcals,     GroupID::Polybench, GroupID::Stream};
  return groups;
}

const std::vector<VariantID>& all_variants() {
  static const std::vector<VariantID> variants = {
      VariantID::Base_Seq,    VariantID::Lambda_Seq,
      VariantID::RAJA_Seq,    VariantID::Base_OpenMP,
      VariantID::Lambda_OpenMP, VariantID::RAJA_OpenMP};
  return variants;
}

GroupID group_from_string(const std::string& s) {
  for (GroupID g : all_groups()) {
    if (to_string(g) == s) return g;
  }
  throw std::invalid_argument("unknown group: " + s);
}

VariantID variant_from_string(const std::string& s) {
  for (VariantID v : all_variants()) {
    if (to_string(v) == s) return v;
  }
  throw std::invalid_argument("unknown variant: " + s);
}

RunStatus run_status_from_string(const std::string& s) {
  for (RunStatus st : all_run_statuses()) {
    if (to_string(st) == s) return st;
  }
  throw std::invalid_argument("unknown run status: " + s);
}

IsolationMode isolation_from_string(const std::string& s) {
  for (IsolationMode m :
       {IsolationMode::None, IsolationMode::Kernel, IsolationMode::Cell}) {
    if (to_string(m) == s) return m;
  }
  throw std::invalid_argument("unknown isolation mode: " + s +
                              " (want none|kernel|cell)");
}

bool is_raja_variant(VariantID v) {
  return v == VariantID::RAJA_Seq || v == VariantID::RAJA_OpenMP;
}

bool is_openmp_variant(VariantID v) {
  return v == VariantID::Base_OpenMP || v == VariantID::Lambda_OpenMP ||
         v == VariantID::RAJA_OpenMP;
}

}  // namespace rperf::suite
