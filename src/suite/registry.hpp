// Kernel registry: canonical Table I ordering and factory functions.
//
// The registry is populated explicitly (not via static initializers, which
// archive linkers silently drop) in src/kernels/registry.cpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "suite/kernel_base.hpp"
#include "suite/run_params.hpp"

namespace rperf::suite {

/// All kernel full names (e.g. "Stream_TRIAD") in Table I order.
[[nodiscard]] const std::vector<std::string>& all_kernel_names();

/// Instantiate one kernel by full name; throws std::invalid_argument for
/// unknown names.
[[nodiscard]] std::unique_ptr<KernelBase> make_kernel(
    const std::string& name, const RunParams& params);

/// Instantiate every kernel that passes the params' kernel/group filters,
/// in Table I order.
[[nodiscard]] std::vector<std::unique_ptr<KernelBase>> make_kernels(
    const RunParams& params);

}  // namespace rperf::suite
