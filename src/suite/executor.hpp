// Executor — drives a suite run: kernel x variant sweep, Caliper-substitute
// profiling, checksum validation, and text reports.
//
// Mirroring the paper's integration, one profile is produced per variant
// (one RAJAPerf run = one variant + one tuning), each containing a region
// per kernel with attributed analytic metrics and run metadata.
//
// Execution is fault tolerant: each (kernel, variant, tuning) cell runs in
// a guarded scope recording a RunStatus instead of aborting the sweep.
// Exceptions become Failed, NaN/Inf checksums become ChecksumInvalid, and
// budget violations become TimedOut; with keep_going (default) the sweep
// continues and failed cells simply show their status in the reports.
// Failed/ChecksumInvalid cells are retried with exponential backoff up to
// RunParams::retries extra attempts. Every terminal cell is appended to
// <output_dir>/progress.jsonl, and RunParams::resume restores cells already
// Passed there instead of re-running them — an interrupted multi-hour sweep
// loses at most one kernel.
//
// With RunParams::isolate != None, cells execute in disposable worker
// processes (rperf::sandbox) instead of in-process: a crash, OOM, or hang
// is contained to the worker and decoded into RunStatus::Crashed /
// OutOfMemory / Killed, forensics (signal, stderr tail, backtrace, rusage)
// are appended to <output_dir>/crashes.jsonl, and a cell that crashes
// RunParams::quarantine_after times is quarantined — skipped with a
// recorded reason, including across --resume runs. Workers stream results
// back over a versioned pipe protocol and the parent folds them into the
// same channels, checkpoint, and reports as in-process execution, so the
// two modes produce identical outputs for passing sweeps.
//
// With RunParams::trace, the process-wide TraceSink records the whole
// sweep — a "sweep" span, one span per cell, per-thread spans from traced
// OpenMP foralls, and counter tracks — including sandboxed workers, which
// stream their trace chunk back over the pipe protocol with a fork-time
// clock offset. write_trace() merges every chunk into one Chrome/Perfetto
// timeline, and the sink's self-accounted cost lands in the
// "trace_overhead_pct" run metadata.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "counters/perf_event.hpp"
#include "instrument/channel.hpp"
#include "instrument/profile.hpp"
#include "instrument/trace_sink.hpp"
#include "sandbox/pool.hpp"
#include "store/store.hpp"
#include "suite/kernel_base.hpp"
#include "suite/registry.hpp"
#include "suite/run_params.hpp"

namespace rperf::suite {

struct RunResult {
  std::string kernel;
  GroupID group = GroupID::Basic;
  VariantID variant = VariantID::Base_Seq;
  std::size_t tuning = 0;
  std::string tuning_name = "default";
  double time_per_rep_sec = -1.0;
  long double checksum = 0.0L;
  Index_type problem_size = 0;
  Index_type reps = 0;
  RunStatus status = RunStatus::Passed;
  std::string error;  ///< diagnostic for non-Passed statuses
  int attempts = 1;   ///< executions performed (> 1 after retries)
  bool restored = false;  ///< true when taken from progress.jsonl (--resume)

  // Setup-cost observability (rperf::mem): milliseconds spent initializing
  // data / computing checksums across all passes, and how much of the
  // working set came from the pool free lists / dataset cache.
  double setup_ms = 0.0;
  double checksum_ms = 0.0;
  std::uint64_t pool_hits = 0;
  std::uint64_t cache_hits = 0;

  /// Hardware-counter totals for this cell (RunParams::hwc): measured via
  /// perf_event_open when available, simulated from the analytic model
  /// otherwise (hwc.source says which); empty() when --hwc was off or the
  /// cell never completed.
  hwc::Sample hwc;
};

class Executor {
 public:
  explicit Executor(RunParams params);

  /// Run every (kernel, variant) pair passing the filters.
  void run();

  [[nodiscard]] const std::vector<RunResult>& results() const {
    return results_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<KernelBase>>& kernels()
      const {
    return kernels_;
  }
  [[nodiscard]] KernelBase* find_kernel(const std::string& name) const;

  /// One profile per executed (variant, tuning), with metadata — exactly
  /// the paper's "a single RAJAPerf run generates a Caliper profile
  /// containing one variant and one tuning". Only (variant, tuning) pairs
  /// with at least one passed cell produce a profile.
  [[nodiscard]] std::vector<cali::Profile> profiles() const;
  /// Write profiles to params.output_dir as <variant>.<tuning>.cali.json.
  void write_profiles() const;

  /// Per-kernel timing table across variants (seconds per repetition);
  /// non-passed cells show their status instead of a time.
  [[nodiscard]] std::string timing_report() const;
  /// Per-kernel checksum table across variants.
  [[nodiscard]] std::string checksum_report() const;
  /// True when all variants of every kernel agree within tolerance;
  /// details (when non-null) receives a description of mismatches.
  [[nodiscard]] bool checksums_consistent(std::string* details) const;

  // ----- failure taxonomy -----
  /// Cell counts per terminal status (zero-count statuses included).
  [[nodiscard]] std::map<RunStatus, std::size_t> status_counts() const;
  /// True when every cell Passed (restored cells count as passed).
  [[nodiscard]] bool all_passed() const;
  /// One line per non-passed cell plus a summary count line.
  [[nodiscard]] std::string status_report() const;
  /// Path of the checkpoint file ("" when output_dir is unset).
  [[nodiscard]] std::string progress_path() const;
  /// Path of the crash-forensics sidecar ("" when output_dir is unset).
  [[nodiscard]] std::string crashes_path() const;

  // ----- tracing (RunParams::trace) -----
  /// Write the merged Chrome/Perfetto timeline (main process + every
  /// sandboxed worker) recorded by the last run() to `path`.
  void write_trace(const std::string& path) const;
  /// Tracing cost as a percent of the sweep's wall time (0 when untraced).
  [[nodiscard]] double trace_overhead_pct() const {
    return trace_overhead_pct_;
  }
  /// Trace chunks received from sandboxed workers during the last run().
  [[nodiscard]] std::size_t worker_trace_count() const {
    return worker_traces_.size();
  }

  // ----- profile store (RunParams::store_dir) -----
  /// Content address of the run landed in the store ("" when --store is
  /// off or the store failed before begin_run).
  [[nodiscard]] const std::string& store_run_id() const {
    return store_run_id_;
  }
  /// Cells durably committed to the store by the last run().
  [[nodiscard]] std::size_t store_cells() const {
    return store_writer_ ? store_writer_->cells_committed() : 0;
  }
  /// First store failure ("" when the store worked). The run itself
  /// never fails because the store did: results still land in --outdir.
  [[nodiscard]] const std::string& store_error() const {
    return store_error_;
  }

  // ----- hardware counters (RunParams::hwc) -----
  /// Where the run's counter values came from: "measured", "simulated",
  /// "mixed" (some cells of the run each), or "" when --hwc was off or no
  /// cell produced a sample.
  [[nodiscard]] std::string hwc_source() const;
  /// Why counters degraded to the simulator ("" while fully measured).
  [[nodiscard]] const std::string& hwc_reason() const { return hwc_reason_; }
  /// Counter-read cost as a percent of the sweep's wall time (0 when
  /// --hwc is off), gated < 5% by the perf_hwc_overhead smoke test.
  [[nodiscard]] double hwc_overhead_pct() const { return hwc_overhead_pct_; }

  // ----- worker pool (RunParams::workers > 0) -----
  /// Supervisor statistics of the last pooled run (zeroed otherwise).
  [[nodiscard]] const sandbox::PoolStats& pool_stats() const {
    return pool_stats_;
  }
  /// True when the pool could not keep any worker alive and the run fell
  /// back to in-process execution (also recorded as the
  /// "sandbox_degraded" profile metadata flag).
  [[nodiscard]] bool degraded() const { return degraded_; }

 private:
  struct Cell {
    KernelBase* kernel = nullptr;
    VariantID vid = VariantID::Base_Seq;
    std::size_t tuning = 0;
    std::string tuning_name;
  };

  /// Aggregate worker accounting for one sandboxed sweep, folded into the
  /// run metadata (and stderr diagnostics under RPERF_SANDBOX_DIAG).
  struct SandboxStats {
    std::size_t children = 0;
    long peak_rss_kb = 0;
    double user_sec = 0.0;
    double sys_sec = 0.0;
  };

  /// Execute one cell (single attempt) into `channel`, classifying the
  /// outcome; fills time/checksum fields of `r` on success.
  RunStatus run_cell_once(const Cell& cell, cali::Channel& channel,
                          RunResult& r);
  /// The classic path: every cell runs in this process.
  void run_in_process(const std::vector<Cell>& cells,
                      const std::map<std::string, RunResult>& prior);
  /// The sandboxed path: cells run in forked workers (isolate=kernel|cell).
  void run_sandboxed(const std::vector<Cell>& cells,
                     const std::map<std::string, RunResult>& prior);
  /// The pooled path (RunParams::workers > 0): cells are dispatched as a
  /// work queue to N persistent supervised workers (sandbox::WorkerPool);
  /// falls back to in-process execution when no worker can be spawned.
  void run_pooled(const std::vector<Cell>& cells,
                  const std::map<std::string, RunResult>& prior);
  /// Body executed inside a pooled worker for one job payload; returns
  /// the result payload (the v1 "cell" record plus injector state).
  std::string worker_run_cell(const std::string& payload);
  /// Body executed inside a forked worker: stream hello / per-cell records /
  /// bye over `fd` for every cell in `batch` (sandbox/protocol.hpp).
  void worker_main(int fd, const std::vector<const Cell*>& batch);
  void append_progress(const RunResult& r);
  /// Land one terminal cell in the profile store (no-op when off); a
  /// StoreError latches the store disabled with a warning — durability
  /// loss must not take down the sweep.
  void store_append_cell(const RunResult& r);
  /// The canonical config map the store content-addresses a run by.
  [[nodiscard]] std::map<std::string, std::string> store_config() const;
  [[nodiscard]] std::map<std::string, RunResult> load_progress() const;
  /// Cumulative crash counts per cell key from crashes.jsonl (for the
  /// quarantine decision on --resume).
  [[nodiscard]] std::map<std::string, int> load_crash_counts() const;

  RunParams params_;
  std::vector<std::unique_ptr<KernelBase>> kernels_;
  /// Keyed by (variant, tuning name); entries exist only for pairs with at
  /// least one passed cell.
  std::map<std::pair<VariantID, std::string>, cali::Channel> channels_;
  std::vector<RunResult> results_;
  std::map<std::string, int> crash_counts_;
  /// Full checkpoint contents, rewritten crash-atomically per cell
  /// (tmp + fsync + rename) so the file on disk is always a complete
  /// prefix of terminal cells — never a torn final line.
  std::string progress_buffer_;
  std::unique_ptr<store::StoreWriter> store_writer_;
  std::string store_run_id_;
  std::string store_error_;
  SandboxStats sandbox_stats_;
  sandbox::PoolStats pool_stats_;
  bool degraded_ = false;
  std::string hwc_reason_;
  double hwc_overhead_pct_ = 0.0;

  /// Sweep epoch for the monotonic t_ms stamped on progress/crash records.
  std::chrono::steady_clock::time_point run_start_ =
      std::chrono::steady_clock::now();
  cali::TraceData main_trace_;
  std::vector<cali::TraceData> worker_traces_;
  double run_wall_sec_ = 0.0;
  double trace_overhead_pct_ = 0.0;
};

}  // namespace rperf::suite
