// Executor — drives a suite run: kernel x variant sweep, Caliper-substitute
// profiling, checksum validation, and text reports.
//
// Mirroring the paper's integration, one profile is produced per variant
// (one RAJAPerf run = one variant + one tuning), each containing a region
// per kernel with attributed analytic metrics and run metadata.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "instrument/channel.hpp"
#include "instrument/profile.hpp"
#include "suite/kernel_base.hpp"
#include "suite/registry.hpp"
#include "suite/run_params.hpp"

namespace rperf::suite {

struct RunResult {
  std::string kernel;
  GroupID group = GroupID::Basic;
  VariantID variant = VariantID::Base_Seq;
  std::size_t tuning = 0;
  std::string tuning_name = "default";
  double time_per_rep_sec = -1.0;
  long double checksum = 0.0L;
  Index_type problem_size = 0;
  Index_type reps = 0;
};

class Executor {
 public:
  explicit Executor(RunParams params);

  /// Run every (kernel, variant) pair passing the filters.
  void run();

  [[nodiscard]] const std::vector<RunResult>& results() const {
    return results_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<KernelBase>>& kernels()
      const {
    return kernels_;
  }
  [[nodiscard]] KernelBase* find_kernel(const std::string& name) const;

  /// One profile per executed (variant, tuning), with metadata — exactly
  /// the paper's "a single RAJAPerf run generates a Caliper profile
  /// containing one variant and one tuning".
  [[nodiscard]] std::vector<cali::Profile> profiles() const;
  /// Write profiles to params.output_dir as <variant>.<tuning>.cali.json.
  void write_profiles() const;

  /// Per-kernel timing table across variants (seconds per repetition).
  [[nodiscard]] std::string timing_report() const;
  /// Per-kernel checksum table across variants.
  [[nodiscard]] std::string checksum_report() const;
  /// True when all variants of every kernel agree within tolerance;
  /// details (when non-null) receives a description of mismatches.
  [[nodiscard]] bool checksums_consistent(std::string* details) const;

 private:
  RunParams params_;
  std::vector<std::unique_ptr<KernelBase>> kernels_;
  /// Keyed by (variant, tuning name).
  std::map<std::pair<VariantID, std::string>, cali::Channel> channels_;
  std::vector<RunResult> results_;
};

}  // namespace rperf::suite
