#include "suite/data_utils.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include <omp.h>

#include "mem/cache.hpp"
#include "mem/fill.hpp"
#include "port/blocked.hpp"

namespace rperf::suite {

namespace {

std::atomic<bool> g_legacy_setup{false};

/// The original serial LCG (numerical recipes constants). Kept only for
/// legacy-setup mode; the optimized fills in mem::fill_* reproduce this
/// stream bit-for-bit via jump-ahead.
class Lcg {
 public:
  explicit Lcg(std::uint32_t seed) : state_(seed ? seed : 1u) {}
  std::uint32_t next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_;
  }
  double next_unit() {
    return (static_cast<double>(next() >> 8) + 0.5) / 16777216.0;
  }

 private:
  std::uint32_t state_;
};

constexpr Index_type kBlock = mem::kFillBlockElems;

/// One block of the shared checksum: four stride-4 double lanes (breaking
/// the serial FP dependency chain), folded lane 0..3 into a long double
/// partial. Depends only on (data, begin, len).
///
/// noinline: the serial and parallel checksum paths must perform the exact
/// same floating-point operations. Inlined into two different contexts
/// (plain loop vs. the OpenMP-outlined lambda) the compiler may optimize
/// the block body differently per call site, producing bit-different
/// partials; a single out-of-line instantiation guarantees one codegen.
template <typename T>
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
long double
checksum_block(const T* data, Index_type begin, Index_type len) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  int wi = static_cast<int>(begin % 7);  // weight index of element `begin`
  for (Index_type k = 0; k < len; ++k) {
    lane[k & 3] +=
        static_cast<double>(data[begin + k]) * static_cast<double>(wi + 1);
    wi = (wi == 6) ? 0 : wi + 1;
  }
  long double partial = static_cast<long double>(lane[0]);
  partial += static_cast<long double>(lane[1]);
  partial += static_cast<long double>(lane[2]);
  partial += static_cast<long double>(lane[3]);
  return partial;
}

/// Shared blocked checksum. The parallel path stores each block partial at
/// its block index and folds serially afterwards; the serial path folds as
/// it goes. Both perform the identical sequence of long double additions
/// (partial_0, partial_1, ...), so the result is thread-count invariant.
template <typename T>
long double checksum_blocked(const T* data, Index_type n) {
  const Index_type nblocks = (n + kBlock - 1) / kBlock;
  if (n >= mem::kParallelFillThreshold && omp_get_max_threads() > 1) {
    std::vector<long double> partials(static_cast<std::size_t>(nblocks));
    port::forall_blocked<port::omp_parallel_for_exec>(
        n, kBlock, [&](Index_type begin, Index_type len) {
          partials[static_cast<std::size_t>(begin / kBlock)] =
              checksum_block(data, begin, len);
        });
    long double sum = 0.0L;
    for (Index_type b = 0; b < nblocks; ++b) {
      sum += partials[static_cast<std::size_t>(b)];
    }
    return sum;
  }
  long double sum = 0.0L;
  for (Index_type b = 0; b < nblocks; ++b) {
    const Index_type begin = b * kBlock;
    sum += checksum_block(data, begin, std::min(kBlock, n - begin));
  }
  return sum;
}

/// Pre-PR element-at-a-time checksum (legacy-setup mode only).
template <typename T>
long double checksum_legacy(const T* data, Index_type n) {
  long double sum = 0.0L;
  for (Index_type i = 0; i < n; ++i) {
    sum += static_cast<long double>(data[i]) *
           static_cast<long double>((i % 7) + 1);
  }
  return sum;
}

}  // namespace

void set_legacy_setup(bool on) {
  g_legacy_setup.store(on, std::memory_order_relaxed);
}

bool legacy_setup() { return g_legacy_setup.load(std::memory_order_relaxed); }

namespace detail {

void fill_random_dispatch(double* dst, Index_type n, std::uint32_t seed) {
  if (legacy_setup()) {
    Lcg rng(seed);
    for (Index_type i = 0; i < n; ++i) dst[i] = rng.next_unit();
    return;
  }
  mem::data_cache().fill_random(dst, n, seed);
}

void fill_const_dispatch(double* dst, Index_type n, double value) {
  if (legacy_setup()) {
    std::fill(dst, dst + n, value);
    return;
  }
  mem::fill_const(dst, n, value);
}

void fill_ramp_dispatch(double* dst, Index_type n, double lo, double hi) {
  const double step = n > 0 ? (hi - lo) / static_cast<double>(n) : 0.0;
  if (legacy_setup()) {
    for (Index_type i = 0; i < n; ++i) {
      dst[i] = lo + static_cast<double>(i) * step;
    }
    return;
  }
  mem::fill_ramp(dst, n, lo, step);
}

void fill_int_random_dispatch(int* dst, Index_type n, int lo, int hi,
                              std::uint32_t seed) {
  if (legacy_setup()) {
    Lcg rng(seed);
    const std::uint32_t span = static_cast<std::uint32_t>(hi - lo) + 1u;
    for (Index_type i = 0; i < n; ++i) {
      dst[i] = lo + static_cast<int>(rng.next() % span);
    }
    return;
  }
  mem::data_cache().fill_int_random(dst, n, lo, hi, seed);
}

}  // namespace detail

long double calc_checksum(const double* data, Index_type n) {
  return legacy_setup() ? checksum_legacy(data, n) : checksum_blocked(data, n);
}

long double calc_checksum(const int* data, Index_type n) {
  return legacy_setup() ? checksum_legacy(data, n) : checksum_blocked(data, n);
}

bool checksums_match(long double a, long double b, double rel_tol) {
  const long double diff = std::fabs(a - b);
  const long double scale = std::max({std::fabs(a), std::fabs(b), 1.0L});
  return diff <= static_cast<long double>(rel_tol) * scale;
}

}  // namespace rperf::suite
