#include "suite/data_utils.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "faults/injector.hpp"

namespace rperf::suite {

namespace {

/// Minimal LCG (numerical recipes constants); not for statistics, only for
/// reproducible, platform-independent fill data.
class Lcg {
 public:
  explicit Lcg(std::uint32_t seed) : state_(seed ? seed : 1u) {}
  std::uint32_t next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_;
  }
  double next_unit() {
    return (static_cast<double>(next() >> 8) + 0.5) / 16777216.0;
  }

 private:
  std::uint32_t state_;
};

}  // namespace

void init_data(std::vector<double>& v, Index_type n, std::uint32_t seed) {
  faults::injector().on_alloc(static_cast<std::size_t>(n) * sizeof(double));
  v.resize(static_cast<std::size_t>(n));
  Lcg rng(seed);
  for (auto& x : v) x = rng.next_unit();
}

void init_data_const(std::vector<double>& v, Index_type n, double value) {
  faults::injector().on_alloc(static_cast<std::size_t>(n) * sizeof(double));
  v.assign(static_cast<std::size_t>(n), value);
}

void init_data_ramp(std::vector<double>& v, Index_type n, double lo,
                    double hi) {
  faults::injector().on_alloc(static_cast<std::size_t>(n) * sizeof(double));
  v.resize(static_cast<std::size_t>(n));
  const double step = n > 0 ? (hi - lo) / static_cast<double>(n) : 0.0;
  for (Index_type i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = lo + static_cast<double>(i) * step;
  }
}

void init_int_data(std::vector<int>& v, Index_type n, int lo, int hi,
                   std::uint32_t seed) {
  faults::injector().on_alloc(static_cast<std::size_t>(n) * sizeof(int));
  v.resize(static_cast<std::size_t>(n));
  Lcg rng(seed);
  const std::uint32_t span = static_cast<std::uint32_t>(hi - lo) + 1u;
  for (auto& x : v) {
    x = lo + static_cast<int>(rng.next() % span);
  }
}

long double calc_checksum(const double* data, Index_type n) {
  long double sum = 0.0L;
  for (Index_type i = 0; i < n; ++i) {
    sum += static_cast<long double>(data[i]) *
           static_cast<long double>((i % 7) + 1);
  }
  return sum;
}

long double calc_checksum(const std::vector<double>& data) {
  return calc_checksum(data.data(), static_cast<Index_type>(data.size()));
}

long double calc_checksum(const int* data, Index_type n) {
  long double sum = 0.0L;
  for (Index_type i = 0; i < n; ++i) {
    sum += static_cast<long double>(data[i]) *
           static_cast<long double>((i % 7) + 1);
  }
  return sum;
}

bool checksums_match(long double a, long double b, double rel_tol) {
  const long double diff = std::fabs(a - b);
  const long double scale = std::max({std::fabs(a), std::fabs(b), 1.0L});
  return diff <= static_cast<long double>(rel_tol) * scale;
}

}  // namespace rperf::suite
