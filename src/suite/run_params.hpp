// Runtime parameters controlling a suite run (the RAJAPerf command line).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "suite/types.hpp"

namespace rperf::suite {

struct RunParams {
  /// Multiplier on each kernel's default problem size.
  double size_factor = 1.0;
  /// Override problem size outright (ignores size_factor when set).
  std::optional<Index_type> size_override;
  /// Multiplier on each kernel's default repetition count.
  double reps_factor = 1.0;
  /// Hard floor/ceiling on repetitions after scaling.
  Index_type min_reps = 1;
  Index_type max_reps = 1000000;
  /// Number of measurement passes; the reported time is the minimum.
  int npasses = 1;

  /// Run only these kernels (full names, e.g. "Stream_TRIAD"); empty = all.
  std::vector<std::string> kernel_filter;
  /// Run only these groups; empty = all.
  std::vector<GroupID> group_filter;
  /// Run only these variants; empty = all available per kernel.
  std::vector<VariantID> variant_filter;
  /// Run only kernels exercising this feature.
  std::optional<FeatureID> feature_filter;
  /// Run every registered tuning of each kernel (default: only "default").
  bool run_tunings = false;

  /// Directory for .cali.json profiles; empty = don't write.
  std::string output_dir;
  /// Crash-consistent profile store directory (rperf::store); every run
  /// lands there as a journaled, content-addressed .rps run. Empty = off.
  std::string store_dir;
  /// Record a merged Chrome/Perfetto timeline for the sweep (all processes
  /// and threads, including sandboxed workers). Enabled by --trace[=PATH].
  bool trace = false;
  /// Attach the perf_event_open region counter service (rperf::hwc) to
  /// every cell: measured per-region PAPI-named counters in profiles, a
  /// counter record per cell in the store, and hwc_source/
  /// hwc_unavailable_reason run metadata. Degrades to the simulator —
  /// never fails the run — when perf events are unavailable.
  bool hwc = false;
  /// Destination for the trace file; empty = <outdir>/trace.json (or
  /// ./trace.json when no outdir is set).
  std::string trace_path;
  /// Extra metadata recorded in every profile.
  std::vector<std::pair<std::string, std::string>> metadata;

  /// Relative tolerance for cross-variant checksum agreement.
  double checksum_tolerance = 1e-7;

  // ----- fault tolerance -----
  /// Continue the sweep past failed cells (record status, keep results for
  /// everything else). Disable with --no-keep-going to stop at the first
  /// failure; remaining cells are recorded as Skipped.
  bool keep_going = true;
  /// Re-run a Failed/ChecksumInvalid cell up to this many extra attempts.
  int retries = 0;
  /// Base delay before a retry; doubles per attempt (exponential backoff).
  int retry_backoff_ms = 50;
  /// Per-kernel wall-clock budget in seconds enforced by a watchdog check
  /// between measurement passes; <= 0 disables the budget.
  double max_kernel_seconds = 0.0;
  /// Skip cells recorded as Passed in <output_dir>/progress.jsonl from a
  /// previous (interrupted or partially failed) run.
  bool resume = false;
  /// Fault-injection spec (see faults/injector.hpp grammar); empty = off.
  std::string fault_spec;
  /// Seed for the injector's deterministic probability decisions.
  std::uint32_t fault_seed = 7u;

  // ----- sandboxed execution (rperf::sandbox) -----
  /// Process isolation granularity: None runs cells in-process (as before);
  /// Kernel forks one worker per kernel (all its variant/tuning cells);
  /// Cell forks one worker per cell. Isolated modes contain SIGSEGV/abort/
  /// OOM/hangs to the worker and record forensics in <outdir>/crashes.jsonl.
  IsolationMode isolate = IsolationMode::None;
  /// A cell that crashes its worker this many times is quarantined: skipped
  /// with a recorded reason instead of re-attempted. Counts persist in
  /// crashes.jsonl across --resume runs.
  int quarantine_after = 3;
  /// Wall-clock budget per cell enforced by the parent (SIGTERM then
  /// SIGKILL); a worker running N cells gets N times this. <= 0 disables.
  double max_cell_seconds = 0.0;
  /// RLIMIT_AS for workers, in MiB; 0 = inherit the parent's limit.
  std::size_t sandbox_mem_mb = 0;
  /// RLIMIT_CPU for workers, in seconds; <= 0 = inherit. Applies to the
  /// disposable (fork-per-cell) workers only: a pooled worker's CPU time
  /// accrues across cells, so the pool relies on wall deadlines instead.
  double sandbox_cpu_seconds = 0.0;

  // ----- persistent worker pool (rperf::sandbox::WorkerPool) -----
  /// Number of persistent sandbox workers; 0 (the default) keeps the
  /// disposable fork-per-batch path. With N >= 1, isolated cells are
  /// dispatched as a work queue to N supervised long-lived workers
  /// (heartbeats, crash recycling, central deadlines, backpressure).
  /// --workers with --isolate none implies --isolate cell, and pooled
  /// dispatch is always per-cell regardless of kernel/cell granularity.
  int workers = 0;
  /// Worker heartbeat period (worker-side) in milliseconds.
  int heartbeat_interval_ms = 100;
  /// Supervisor-side silence budget: a worker that produces no frame for
  /// this long is killed and recycled; its cell is retried elsewhere.
  int heartbeat_timeout_ms = 2000;
  /// Pooled result/profile transport: true (default, --transport shm)
  /// carries binary wire-encoded payloads over per-worker shared-memory
  /// rings (pool protocol v3); false (--transport json) forces the v2
  /// JSON-in-frame pipe path. Shm falls back to json per worker when ring
  /// setup fails; the effective choice is recorded in the
  /// "sandbox_transport" profile metadata.
  bool shm_transport = true;

  [[nodiscard]] bool wants_kernel(const std::string& name) const {
    if (kernel_filter.empty()) return true;
    for (const auto& k : kernel_filter) {
      if (k == name) return true;
    }
    return false;
  }

  [[nodiscard]] bool wants_group(GroupID g) const {
    if (group_filter.empty()) return true;
    for (GroupID f : group_filter) {
      if (f == g) return true;
    }
    return false;
  }

  [[nodiscard]] bool wants_variant(VariantID v) const {
    if (variant_filter.empty()) return true;
    for (VariantID f : variant_filter) {
      if (f == v) return true;
    }
    return false;
  }

  /// Parse RAJAPerf-style command-line arguments:
  ///   --size-factor F  --size N  --reps-factor F  --npasses N
  ///   --kernels A,B    --groups G,H  --variants V,W  --outdir DIR
  ///   --tunings        (run all registered tunings)
  /// Both "--flag VALUE" and "--flag=VALUE" spellings are accepted.
  /// Throws std::invalid_argument on malformed input.
  static RunParams parse(int argc, const char* const* argv);

  /// Usage text for executables embedding the suite.
  static std::string usage();
};

}  // namespace rperf::suite
