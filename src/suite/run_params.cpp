#include "suite/run_params.hpp"

#include <sstream>
#include <stdexcept>

#include "faults/injector.hpp"

namespace rperf::suite {

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

RunParams RunParams::parse(int argc, const char* const* argv) {
  RunParams p;
  // Normalize "--flag=value" into "--flag" "value" so both spellings work.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string raw = argv[i];
    const std::size_t eq = raw.find('=');
    if (raw.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(raw.substr(0, eq));
      args.push_back(raw.substr(eq + 1));
    } else {
      args.push_back(raw);
    }
  }
  const int n = static_cast<int>(args.size());
  auto need_value = [&](int i, const std::string& flag) {
    if (i + 1 >= n) {
      throw std::invalid_argument("missing value for " + flag);
    }
    return args[i + 1];
  };
  for (int i = 0; i < n; ++i) {
    const std::string arg = args[i];
    if (arg == "--size-factor") {
      p.size_factor = std::stod(need_value(i, arg));
      ++i;
    } else if (arg == "--size") {
      p.size_override = static_cast<Index_type>(std::stoll(need_value(i, arg)));
      ++i;
    } else if (arg == "--reps-factor") {
      p.reps_factor = std::stod(need_value(i, arg));
      ++i;
    } else if (arg == "--npasses") {
      p.npasses = std::stoi(need_value(i, arg));
      ++i;
    } else if (arg == "--kernels") {
      p.kernel_filter = split_csv(need_value(i, arg));
      ++i;
    } else if (arg == "--groups") {
      for (const auto& g : split_csv(need_value(i, arg))) {
        p.group_filter.push_back(group_from_string(g));
      }
      ++i;
    } else if (arg == "--variants") {
      for (const auto& v : split_csv(need_value(i, arg))) {
        p.variant_filter.push_back(variant_from_string(v));
      }
      ++i;
    } else if (arg == "--outdir") {
      p.output_dir = need_value(i, arg);
      ++i;
    } else if (arg == "--store") {
      p.store_dir = need_value(i, arg);
      ++i;
    } else if (arg == "--trace") {
      p.trace = true;
      // Optional value: "--trace=PATH" (or "--trace PATH"); a following
      // flag means "use the default path".
      if (i + 1 < n && args[i + 1].rfind("-", 0) != 0) {
        p.trace_path = args[i + 1];
        ++i;
      }
    } else if (arg == "--hwc") {
      p.hwc = true;
    } else if (arg == "--tunings") {
      p.run_tunings = true;
    } else if (arg == "--keep-going") {
      p.keep_going = true;
    } else if (arg == "--no-keep-going") {
      p.keep_going = false;
    } else if (arg == "--retries") {
      p.retries = std::stoi(need_value(i, arg));
      ++i;
    } else if (arg == "--retry-backoff-ms") {
      p.retry_backoff_ms = std::stoi(need_value(i, arg));
      ++i;
    } else if (arg == "--max-kernel-seconds") {
      p.max_kernel_seconds = std::stod(need_value(i, arg));
      ++i;
    } else if (arg == "--resume") {
      p.resume = true;
    } else if (arg == "--faults") {
      p.fault_spec = need_value(i, arg);
      ++i;
    } else if (arg == "--fault-seed") {
      p.fault_seed =
          static_cast<std::uint32_t>(std::stoul(need_value(i, arg)));
      ++i;
    } else if (arg == "--isolate") {
      p.isolate = isolation_from_string(need_value(i, arg));
      ++i;
    } else if (arg == "--quarantine-after") {
      p.quarantine_after = std::stoi(need_value(i, arg));
      ++i;
    } else if (arg == "--max-cell-seconds") {
      p.max_cell_seconds = std::stod(need_value(i, arg));
      ++i;
    } else if (arg == "--sandbox-mem-mb") {
      p.sandbox_mem_mb =
          static_cast<std::size_t>(std::stoull(need_value(i, arg)));
      ++i;
    } else if (arg == "--sandbox-cpu-seconds") {
      p.sandbox_cpu_seconds = std::stod(need_value(i, arg));
      ++i;
    } else if (arg == "--workers") {
      p.workers = std::stoi(need_value(i, arg));
      ++i;
    } else if (arg == "--heartbeat-interval-ms") {
      p.heartbeat_interval_ms = std::stoi(need_value(i, arg));
      ++i;
    } else if (arg == "--heartbeat-timeout-ms") {
      p.heartbeat_timeout_ms = std::stoi(need_value(i, arg));
      ++i;
    } else if (arg == "--transport") {
      const std::string v = need_value(i, arg);
      if (v == "shm") {
        p.shm_transport = true;
      } else if (v == "json") {
        p.shm_transport = false;
      } else {
        throw std::invalid_argument("--transport must be shm or json");
      }
      ++i;
    } else {
      throw std::invalid_argument("unknown argument: " + arg);
    }
  }
  if (p.size_factor <= 0.0) {
    throw std::invalid_argument("--size-factor must be > 0");
  }
  if (p.npasses < 1) throw std::invalid_argument("--npasses must be >= 1");
  if (p.retries < 0) throw std::invalid_argument("--retries must be >= 0");
  if (p.retry_backoff_ms < 0) {
    throw std::invalid_argument("--retry-backoff-ms must be >= 0");
  }
  if (p.quarantine_after < 1) {
    throw std::invalid_argument("--quarantine-after must be >= 1");
  }
  if (p.workers < 0) throw std::invalid_argument("--workers must be >= 0");
  if (p.heartbeat_interval_ms < 1 || p.heartbeat_timeout_ms < 1) {
    throw std::invalid_argument(
        "--heartbeat-interval-ms/--heartbeat-timeout-ms must be >= 1");
  }
  // Asking for a worker pool is asking for isolation: imply cell mode so
  // "--workers 4" alone does the expected thing.
  if (p.workers > 0 && p.isolate == IsolationMode::None) {
    p.isolate = IsolationMode::Cell;
  }
  // Validate the fault grammar eagerly so a typo fails at parse time, not
  // mid-sweep.
  (void)faults::Injector::parse(p.fault_spec);
  return p;
}

std::string RunParams::usage() {
  return "options:\n"
         "  --size-factor F   scale each kernel's default problem size\n"
         "  --size N          override problem size for all kernels\n"
         "  --reps-factor F   scale each kernel's default repetitions\n"
         "  --npasses N       measurement passes (report the minimum)\n"
         "  --kernels A,B     run only the named kernels\n"
         "  --groups G,H      run only the named groups\n"
         "  --variants V,W    run only the named variants\n"
         "  --tunings         run every registered tuning per kernel\n"
         "  --outdir DIR      write one .cali.json profile per variant\n"
         "  --store DIR       land the run in the crash-consistent .rps\n"
         "                    profile store at DIR (journaled, torn-write\n"
         "                    safe; query with rperf-report --store)\n"
         "  --trace[=PATH]    record a merged Chrome/Perfetto timeline of\n"
         "                    the whole sweep (all processes and threads)\n"
         "                    to PATH (default <outdir>/trace.json); open\n"
         "                    at ui.perfetto.dev\n"
         "  --hwc             read hardware counters (perf_event_open)\n"
         "                    per kernel region and attribute them under\n"
         "                    PAPI preset names; falls back to simulated\n"
         "                    counters (hwc_source=simulated metadata +\n"
         "                    recorded reason) when perf events are\n"
         "                    unavailable — never a failure\n"
         "  --keep-going      continue past failed cells (default)\n"
         "  --no-keep-going   stop the sweep at the first failure\n"
         "  --retries N       extra attempts for failed cells (default 0)\n"
         "  --retry-backoff-ms N  base retry delay, doubling per attempt\n"
         "  --max-kernel-seconds S  per-kernel wall-clock budget\n"
         "  --resume          skip cells already Passed in\n"
         "                    <outdir>/progress.jsonl\n"
         "  --faults SPEC     inject faults, e.g.\n"
         "                    'throw@Basic_DAXPY,slow@Lcals_HYDRO_2D:50ms'\n"
         "  --fault-seed N    seed for probabilistic fault decisions\n"
         "  --isolate MODE    run cells in disposable worker processes:\n"
         "                    none (in-process, default), kernel (one\n"
         "                    worker per kernel), cell (one per cell)\n"
         "  --quarantine-after N  skip a cell after N worker crashes\n"
         "                    (default 3; counts persist across --resume)\n"
         "  --max-cell-seconds S  per-cell wall deadline for workers\n"
         "                    (SIGTERM, then SIGKILL after a grace period)\n"
         "  --sandbox-mem-mb N    RLIMIT_AS for workers, in MiB\n"
         "  --sandbox-cpu-seconds S  RLIMIT_CPU for workers\n"
         "  --workers N       dispatch isolated cells to N persistent,\n"
         "                    supervised sandbox workers (heartbeats,\n"
         "                    crash recycling, central deadlines); implies\n"
         "                    --isolate cell; 0 = fork-per-cell (default)\n"
         "  --heartbeat-interval-ms N  pooled worker beat period\n"
         "  --heartbeat-timeout-ms N   recycle a pooled worker silent for\n"
         "                    this long (default 2000)\n"
         "  --transport T     pooled payload transport: shm (default;\n"
         "                    binary records over per-worker shared-memory\n"
         "                    rings) or json (v2 JSON-in-frame pipe)\n";
}

}  // namespace rperf::suite
