// Enumerations shared across the kernel suite: groups, variants, features,
// and complexity classes — mirroring Table I of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "port/range.hpp"

namespace rperf::suite {

using port::Index_type;

/// The seven kernel groups of Table I.
enum class GroupID {
  Algorithm,
  Apps,
  Basic,
  Comm,
  Lcals,
  Polybench,
  Stream,
};

/// Programming-model variants. Base_* is the direct implementation in the
/// programming model; RAJA_* goes through the rperf portability layer;
/// Lambda_* isolates the cost of C++ lambdas without the layer.
enum class VariantID {
  Base_Seq,
  Lambda_Seq,
  RAJA_Seq,
  Base_OpenMP,
  Lambda_OpenMP,
  RAJA_OpenMP,
};

/// RAJA features a kernel exercises (Table I feature columns).
enum class FeatureID : std::uint32_t {
  Forall = 1u << 0,
  Kernel = 1u << 1,   // nested loops
  Sort = 1u << 2,
  Scan = 1u << 3,
  Reduction = 1u << 4,
  Atomic = 1u << 5,
  View = 1u << 6,
  Workgroup = 1u << 7, // message packing (Comm)
};

/// Outcome of one (kernel, variant, tuning) cell of the sweep.
/// Crashed/OutOfMemory/Killed are produced only by sandboxed execution
/// (--isolate), where a disposable worker process absorbs failure modes
/// that in-process isolation cannot survive.
enum class RunStatus {
  Passed,           ///< executed, finite checksum recorded
  Failed,           ///< exception escaped the kernel lifecycle
  ChecksumInvalid,  ///< executed but produced a NaN/Inf checksum
  TimedOut,         ///< exceeded the per-kernel wall-clock budget
  Skipped,          ///< not executed (resume hit, quarantine, or stop)
  Crashed,          ///< worker died on a fatal signal (SIGSEGV, SIGABRT, ...)
  OutOfMemory,      ///< worker exhausted memory (rlimit or allocation failure)
  Killed,           ///< worker killed by the parent (hang deadline, CPU limit)
};

/// Process-isolation granularity of the sweep (--isolate).
enum class IsolationMode {
  None,    ///< cells run in the parent process (PR-1 in-process guards)
  Kernel,  ///< one disposable worker process per kernel
  Cell,    ///< one disposable worker process per (kernel, variant, tuning)
};

/// Computational complexity relative to problem (storage) size.
enum class Complexity {
  N,        // O(n)
  N_log_N,  // sorts
  N_3_2,    // matrix-matrix style, O(n^{3/2}) relative to storage
  N_2_3,    // surface work on a volume decomposition (halo exchange)
};

[[nodiscard]] std::string to_string(GroupID g);
[[nodiscard]] std::string to_string(VariantID v);
[[nodiscard]] std::string to_string(Complexity c);
[[nodiscard]] std::string to_string(FeatureID f);
[[nodiscard]] std::string to_string(RunStatus s);
[[nodiscard]] std::string to_string(IsolationMode m);

/// Every terminal RunStatus, in enum order (used for taxonomy tables).
[[nodiscard]] const std::vector<RunStatus>& all_run_statuses();

[[nodiscard]] const std::vector<GroupID>& all_groups();
[[nodiscard]] const std::vector<VariantID>& all_variants();

/// Parse helpers; throw std::invalid_argument on unknown names.
[[nodiscard]] GroupID group_from_string(const std::string& s);
[[nodiscard]] VariantID variant_from_string(const std::string& s);
[[nodiscard]] RunStatus run_status_from_string(const std::string& s);
[[nodiscard]] IsolationMode isolation_from_string(const std::string& s);

/// True for variants that execute through the portability layer.
[[nodiscard]] bool is_raja_variant(VariantID v);
/// True for OpenMP-parallel variants.
[[nodiscard]] bool is_openmp_variant(VariantID v);

}  // namespace rperf::suite
