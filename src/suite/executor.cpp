#include "suite/executor.hpp"

#include <filesystem>
#include <iomanip>
#include <sstream>

#include "suite/data_utils.hpp"

namespace rperf::suite {

Executor::Executor(RunParams params) : params_(std::move(params)) {
  kernels_ = make_kernels(params_);
}

void Executor::run() {
  results_.clear();
  channels_.clear();
  for (auto& kernel : kernels_) {
    for (VariantID vid : kernel->variants()) {
      if (!params_.wants_variant(vid)) continue;
      for (std::size_t tuning = 0; tuning < kernel->num_tunings();
           ++tuning) {
        if (!params_.run_tunings && tuning > 0) continue;
        const std::string& tname = kernel->tunings()[tuning];
        cali::Channel& channel = channels_[{vid, tname}];
        kernel->execute(vid, tuning, channel);
        RunResult r;
        r.kernel = kernel->name();
        r.group = kernel->group();
        r.variant = vid;
        r.tuning = tuning;
        r.tuning_name = tname;
        r.time_per_rep_sec = kernel->time_per_rep(vid, tuning);
        r.checksum = kernel->checksum(vid, tuning);
        r.problem_size = kernel->actual_prob_size();
        r.reps = kernel->run_reps();
        results_.push_back(r);
      }
    }
  }
  // Run-level metadata (the Adiak substitute).
  for (auto& [key, channel] : channels_) {
    channel.set_metadata("variant", to_string(key.first));
    channel.set_metadata("tuning", key.second);
    channel.set_metadata("suite", "rajaperf-repro");
    channel.set_metadata("size_factor", params_.size_factor);
    for (const auto& [k, v] : params_.metadata) {
      channel.set_metadata(k, v);
    }
  }
}

KernelBase* Executor::find_kernel(const std::string& name) const {
  for (const auto& k : kernels_) {
    if (k->name() == name) return k.get();
  }
  return nullptr;
}

std::vector<cali::Profile> Executor::profiles() const {
  std::vector<cali::Profile> out;
  out.reserve(channels_.size());
  for (const auto& [key, channel] : channels_) {
    out.push_back(cali::to_profile(channel));
  }
  return out;
}

void Executor::write_profiles() const {
  if (params_.output_dir.empty()) return;
  std::filesystem::create_directories(params_.output_dir);
  for (const auto& [key, channel] : channels_) {
    const std::string path = params_.output_dir + "/" +
                             to_string(key.first) + "." + key.second +
                             ".cali.json";
    cali::write_profile(channel, path);
  }
}

std::string Executor::timing_report() const {
  // Collect executed variants in enum order (tuning 0 / "default").
  std::vector<VariantID> vids;
  for (const auto& [key, channel] : channels_) {
    if (key.second == "default") vids.push_back(key.first);
  }

  std::ostringstream os;
  os << std::left << std::setw(32) << "Kernel";
  for (VariantID v : vids) os << std::right << std::setw(16) << to_string(v);
  os << '\n';
  for (const auto& kernel : kernels_) {
    os << std::left << std::setw(32) << kernel->name();
    for (VariantID v : vids) {
      if (kernel->was_run(v)) {
        os << std::right << std::setw(16) << std::scientific
           << std::setprecision(3) << kernel->time_per_rep(v);
      } else {
        os << std::right << std::setw(16) << "--";
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string Executor::checksum_report() const {
  std::vector<VariantID> vids;
  for (const auto& [key, channel] : channels_) {
    if (key.second == "default") vids.push_back(key.first);
  }

  std::ostringstream os;
  os << std::left << std::setw(32) << "Kernel";
  for (VariantID v : vids) os << std::right << std::setw(22) << to_string(v);
  os << '\n';
  for (const auto& kernel : kernels_) {
    os << std::left << std::setw(32) << kernel->name();
    for (VariantID v : vids) {
      if (kernel->was_run(v)) {
        os << std::right << std::setw(22) << std::scientific
           << std::setprecision(12)
           << static_cast<double>(kernel->checksum(v));
      } else {
        os << std::right << std::setw(22) << "--";
      }
    }
    os << '\n';
  }
  return os.str();
}

bool Executor::checksums_consistent(std::string* details) const {
  // Variants of a kernel must agree within each tuning (different tunings
  // may legitimately compute different configurations).
  bool ok = true;
  std::ostringstream os;
  for (const auto& kernel : kernels_) {
    for (std::size_t tuning = 0; tuning < kernel->num_tunings(); ++tuning) {
      long double reference = 0.0L;
      bool have_reference = false;
      VariantID ref_vid = VariantID::Base_Seq;
      for (VariantID v : kernel->variants()) {
        if (!kernel->was_run(v, tuning)) continue;
        if (!have_reference) {
          reference = kernel->checksum(v, tuning);
          ref_vid = v;
          have_reference = true;
          continue;
        }
        const long double cs = kernel->checksum(v, tuning);
        if (!checksums_match(reference, cs, params_.checksum_tolerance)) {
          ok = false;
          os << kernel->name() << " [" << kernel->tunings()[tuning]
             << "]: " << to_string(ref_vid) << "="
             << static_cast<double>(reference) << " vs " << to_string(v)
             << "=" << static_cast<double>(cs) << '\n';
        }
      }
    }
  }
  if (details != nullptr) *details = os.str();
  return ok;
}

}  // namespace rperf::suite
