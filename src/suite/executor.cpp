#include "suite/executor.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

#include "faults/injector.hpp"
#include "instrument/hwc.hpp"
#include "instrument/json.hpp"
#include "instrument/trace_export.hpp"
#include "instrument/trace_sink.hpp"
#include "instrument/wire_codec.hpp"
#include "machine/machine.hpp"
#include "mem/cache.hpp"
#include "mem/pool.hpp"
#include "sandbox/protocol.hpp"
#include "sandbox/sandbox.hpp"
#include "sandbox/wire.hpp"
#include "suite/data_utils.hpp"

namespace rperf::suite {

namespace {

/// Trace span name for one sweep cell.
std::string cell_span_name(const std::string& kernel, VariantID vid,
                           const std::string& tuning_name) {
  return kernel + " [" + to_string(vid) + "/" + tuning_name + "]";
}

/// Sample the counter tracks (cumulative pool/cache hits and injected
/// faults) onto the trace timeline; called after each finished cell so
/// the tracks step in sync with the spans.
void sample_trace_counters() {
  cali::TraceSink& sink = cali::TraceSink::instance();
  if (!sink.enabled()) return;
  sink.counter(sink.intern("pool_hits"),
               static_cast<double>(mem::pool().stats().reuse_hits));
  sink.counter(sink.intern("cache_hits"),
               static_cast<double>(mem::data_cache().stats().hits));
  sink.counter(sink.intern("fault_fires"),
               static_cast<double>(faults::injector().fires()));
}

/// Stable identity of a sweep cell, used as the progress-file key.
std::string cell_key(const std::string& kernel, VariantID vid,
                     const std::string& tuning_name) {
  return kernel + "/" + to_string(vid) + "/" + tuning_name;
}

/// Short table marker for a non-passed cell.
const char* status_marker(RunStatus s) {
  switch (s) {
    case RunStatus::Passed: return "ok";
    case RunStatus::Failed: return "FAILED";
    case RunStatus::ChecksumInvalid: return "BADSUM";
    case RunStatus::TimedOut: return "TIMEOUT";
    case RunStatus::Skipped: return "SKIPPED";
    case RunStatus::Crashed: return "CRASHED";
    case RunStatus::OutOfMemory: return "OOM";
    case RunStatus::Killed: return "KILLED";
  }
  return "?";
}

/// Write one '\n'-terminated protocol line to a pipe fd (worker side).
/// Runs in the forked worker, so failures terminate abruptly via _exit.
void write_json_line(int fd, json::Object obj) {
  std::string line = json::Value(std::move(obj)).dump();
  line.push_back('\n');
  const char* p = line.data();
  std::size_t n = line.size();
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::_exit(3);  // parent gone; nothing sensible left to do
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Merge a cell's hardware-counter sample into a JSON cell record (worker
/// pipe protocols v1/v2); no-op for cells without a sample, so records
/// from --hwc-less runs are byte-identical to before.
void hwc_to_json(const hwc::Sample& s, json::Object& o) {
  if (s.empty()) return;
  o["hwc_source"] = s.source;
  o["hwc_enabled_ns"] = static_cast<std::int64_t>(s.time_enabled_ns);
  o["hwc_running_ns"] = static_cast<std::int64_t>(s.time_running_ns);
  o["hwc_overhead_sec"] = s.overhead_sec;
  json::Object vals;
  for (const auto& [name, value] : s.values) vals[name] = value;
  o["hwc_values"] = std::move(vals);
}

hwc::Sample hwc_from_json(const json::Value& v) {
  hwc::Sample s;
  if (!v.contains("hwc_source")) return s;
  s.source = v.at("hwc_source").as_string();
  s.time_enabled_ns =
      static_cast<std::uint64_t>(v.number_or("hwc_enabled_ns", 0.0));
  s.time_running_ns =
      static_cast<std::uint64_t>(v.number_or("hwc_running_ns", 0.0));
  s.overhead_sec = v.number_or("hwc_overhead_sec", 0.0);
  if (v.contains("hwc_values")) {
    for (const auto& [name, value] : v.at("hwc_values").as_object()) {
      s.values[name] = value.as_number();
    }
  }
  return s;
}

/// Decode a worker "cell" record into the parent-side RunResult.
void decode_cell_record(const json::Value& v, RunResult& r) {
  r.status = run_status_from_string(v.at("status").as_string());
  r.time_per_rep_sec = v.number_or("time_per_rep_sec", -1.0);
  if (v.contains("checksum_hex")) {
    r.checksum = sandbox::checksum_from_hex(v.at("checksum_hex").as_string());
  } else {
    r.checksum = static_cast<long double>(v.number_or("checksum", 0.0));
  }
  r.problem_size = static_cast<Index_type>(v.number_or("problem_size", 0.0));
  r.reps = static_cast<Index_type>(v.number_or("reps", 0.0));
  r.setup_ms = v.number_or("setup_ms", 0.0);
  r.checksum_ms = v.number_or("checksum_ms", 0.0);
  r.pool_hits = static_cast<std::uint64_t>(v.number_or("pool_hits", 0.0));
  r.cache_hits = static_cast<std::uint64_t>(v.number_or("cache_hits", 0.0));
  r.error = v.string_or("error", "");
  r.hwc = hwc_from_json(v);
}

/// Stable dispatch-affinity key for a kernel name (FNV-1a, forced odd so
/// 0 keeps meaning "no affinity").
std::uint64_t affinity_key(const std::string& kernel) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : kernel) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h | 1ull;
}

/// Encode a worker cell record as a v3 wire blob — the binary counterpart
/// of the JSON object worker_run_cell builds for the v2 transport. The
/// checksum crosses as raw long-double bits (put_f80), not hexfloat text.
std::string encode_cell_record_wire(const RunResult& r,
                                    const std::string& injector_state,
                                    const cali::Profile* profile) {
  wire::Writer w;
  w.begin_blob();
  w.put_str(to_string(r.status));
  w.put_f64(r.time_per_rep_sec);
  w.put_f80(r.checksum);
  w.put_i64(static_cast<std::int64_t>(r.problem_size));
  w.put_i64(static_cast<std::int64_t>(r.reps));
  w.put_f64(r.setup_ms);
  w.put_f64(r.checksum_ms);
  w.put_u64(r.pool_hits);
  w.put_u64(r.cache_hits);
  w.put_bytes(r.error);
  w.put_bytes(injector_state);
  w.put_u8(profile != nullptr ? 1 : 0);
  if (profile != nullptr) cali::profile_to_wire(*profile, w);
  w.put_u8(r.hwc.empty() ? 0 : 1);
  if (!r.hwc.empty()) hwc::sample_to_wire(r.hwc, w);
  return w.take();
}

/// Decode a v3 wire cell record (throws wire::Error on corruption, which
/// the caller maps to the malformed-record path like a JSON parse error).
void decode_cell_record_wire(const std::string& blob, RunResult& r,
                             std::string& injector_state,
                             std::optional<cali::Profile>& profile) {
  wire::Reader rd(blob);
  rd.expect_blob();
  r.status = run_status_from_string(rd.get_str());
  r.time_per_rep_sec = rd.get_f64();
  r.checksum = rd.get_f80();
  r.problem_size = static_cast<Index_type>(rd.get_i64());
  r.reps = static_cast<Index_type>(rd.get_i64());
  r.setup_ms = rd.get_f64();
  r.checksum_ms = rd.get_f64();
  r.pool_hits = rd.get_u64();
  r.cache_hits = rd.get_u64();
  r.error = rd.get_bytes();
  injector_state = rd.get_bytes();
  if (rd.get_u8() != 0) profile = cali::profile_from_wire(rd);
  if (rd.get_u8() != 0) r.hwc = hwc::sample_from_wire(rd);
}

/// Classify a worker that terminated without completing the protocol.
void decode_worker_failure(const sandbox::WorkerReport& rep,
                           std::size_t sandbox_mem_mb, RunResult& r) {
  switch (rep.exit) {
    case sandbox::WorkerExit::DeadlineKilled:
      r.status = RunStatus::Killed;
      r.error = "worker killed past the wall-clock deadline";
      return;
    case sandbox::WorkerExit::OomExit:
      r.status = RunStatus::OutOfMemory;
      r.error = "worker " + rep.describe();
      return;
    case sandbox::WorkerExit::Signaled:
      if (rep.signal == SIGXCPU) {
        r.status = RunStatus::Killed;
        r.error = "worker exceeded its CPU limit (SIGXCPU)";
      } else if (rep.signal == SIGKILL && sandbox_mem_mb > 0) {
        // The kernel OOM killer (or an unblockable kill under RLIMIT_AS
        // pressure) leaves SIGKILL as the only evidence.
        r.status = RunStatus::OutOfMemory;
        r.error = "worker killed (SIGKILL) under a memory limit";
      } else {
        r.status = RunStatus::Crashed;
        r.error = "worker " + rep.describe();
      }
      return;
    case sandbox::WorkerExit::NonzeroExit:
      r.status = RunStatus::Crashed;
      r.error = "worker " + rep.describe();
      return;
    case sandbox::WorkerExit::CleanExit:
      r.status = RunStatus::Crashed;
      r.error = "worker exited before completing the pipe protocol";
      return;
  }
}

/// Fault kind a dead worker's status implies, for budget fold-back.
std::optional<faults::FaultKind> implied_fault_kind(const RunResult& r,
                                                    int signal) {
  switch (r.status) {
    case RunStatus::Crashed:
      if (signal == SIGSEGV) return faults::FaultKind::Segv;
      if (signal == SIGABRT) return faults::FaultKind::Abort;
      // ASan converts fatal signals into exit(1); attribute by best guess.
      return faults::FaultKind::Segv;
    case RunStatus::OutOfMemory:
      return faults::FaultKind::Oom;
    case RunStatus::Killed:
      return faults::FaultKind::Hang;
    default:
      return std::nullopt;
  }
}

}  // namespace

Executor::Executor(RunParams params) : params_(std::move(params)) {
  kernels_ = make_kernels(params_);
}

std::string Executor::progress_path() const {
  if (params_.output_dir.empty()) return "";
  return params_.output_dir + "/progress.jsonl";
}

std::string Executor::crashes_path() const {
  if (params_.output_dir.empty()) return "";
  return params_.output_dir + "/crashes.jsonl";
}

RunStatus Executor::run_cell_once(const Cell& cell, cali::Channel& channel,
                                  RunResult& r) {
  r.hwc = hwc::Sample{};  // retries must not accumulate samples
  // Counter service scoped to this cell: attach is fail-open (perf
  // unavailable leaves the service inactive and the channel untouched)
  // and the destructor detaches on every exit path below. Because this
  // runs wherever the cell runs, sandboxed and pooled workers open their
  // event groups post-fork in the worker process — per-thread counters
  // measure the worker, not the supervisor.
  hwc::RegionCounterService hwc_service;
  if (params_.hwc) (void)hwc_service.attach(channel);
  try {
    cell.kernel->execute(cell.vid, cell.tuning, channel);
  } catch (const KernelTimeout& e) {
    r.error = e.what();
    return RunStatus::TimedOut;
  } catch (const std::exception& e) {
    r.error = e.what();
    return RunStatus::Failed;
  } catch (...) {
    r.error = "unknown exception";
    return RunStatus::Failed;
  }
  r.time_per_rep_sec = cell.kernel->time_per_rep(cell.vid, cell.tuning);
  r.checksum = cell.kernel->checksum(cell.vid, cell.tuning);
  r.problem_size = cell.kernel->actual_prob_size();
  r.reps = cell.kernel->run_reps();
  r.setup_ms = cell.kernel->last_setup_sec() * 1e3;
  r.checksum_ms = cell.kernel->last_checksum_sec() * 1e3;
  r.pool_hits = cell.kernel->last_pool_hits();
  r.cache_hits = cell.kernel->last_cache_hits();
  if (params_.hwc) {
    if (hwc_service.regions_observed() > 0) {
      // Measured: the service already attributed multiplex-scaled PAPI
      // metrics to the kernel region at each end() hook.
      r.hwc = hwc_service.sample();
    } else {
      // Degrade to the simulator: analytic per-repetition counters from
      // the probed host model, scaled to the region totals the measured
      // path would have attributed (reps per pass x passes).
      const double scale = static_cast<double>(r.reps) *
                           static_cast<double>(std::max(1, params_.npasses));
      try {
        r.hwc = hwc::simulated_sample(cell.kernel->traits(),
                                      machine::local_host(), scale);
        for (const auto& [name, value] : r.hwc.values) {
          channel.attribute_metric_at(cell.kernel->name(), name, value);
        }
      } catch (const std::exception&) {
        // Even the model declined (no CPU host model): the cell still
        // passes, just without counter metrics.
      }
    }
  }
  if (!std::isfinite(static_cast<double>(r.checksum))) {
    r.error = "checksum is not finite";
    return RunStatus::ChecksumInvalid;
  }
  r.error.clear();
  return RunStatus::Passed;
}

void Executor::append_progress(const RunResult& r) {
  store_append_cell(r);
  const std::string path = progress_path();
  if (path.empty()) return;
  json::Object o;
  o["kernel"] = r.kernel;
  o["variant"] = to_string(r.variant);
  o["tuning"] = r.tuning_name;
  o["status"] = to_string(r.status);
  o["time_per_rep_sec"] = r.time_per_rep_sec;
  o["checksum"] = static_cast<double>(r.checksum);
  // Exact long-double round-trip so restored cells keep bit-identical
  // checksums (the readable double above is for humans and older readers).
  o["checksum_hex"] = sandbox::checksum_to_hex(r.checksum);
  o["problem_size"] = static_cast<std::int64_t>(r.problem_size);
  o["reps"] = static_cast<std::int64_t>(r.reps);
  o["attempts"] = r.attempts;
  o["setup_ms"] = r.setup_ms;
  o["checksum_ms"] = r.checksum_ms;
  o["pool_hits"] = static_cast<std::int64_t>(r.pool_hits);
  o["cache_hits"] = static_cast<std::int64_t>(r.cache_hits);
  if (!r.hwc.empty()) {
    o["hwc_source"] = r.hwc.source;
    if (r.hwc.source != "measured" && !hwc_reason_.empty()) {
      o["hwc_unavailable_reason"] = hwc_reason_;
    }
  }
  // Monotonic milliseconds since run() started, so progress records line
  // up with the trace timeline and crashes.jsonl on one clock.
  o["t_ms"] = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - run_start_)
                  .count();
  if (!r.error.empty()) o["error"] = r.error;
  std::string line = json::Value(std::move(o)).dump();
  line.push_back('\n');
  progress_buffer_ += line;
  // Crash-atomic checkpoint: rewrite the whole file through tmp + fsync +
  // rename(2). A crash at any byte leaves either the previous complete
  // checkpoint or this one — never the torn final line load_progress
  // would otherwise have to drop.
  try {
    store::atomic_write_file(path, progress_buffer_);
  } catch (const store::IoError& e) {
    throw std::runtime_error("cannot write progress file: " +
                             std::string(e.what()));
  }
}

void Executor::store_append_cell(const RunResult& r) {
  if (!store_writer_) return;
  try {
    store::CellRecord c;
    c.kernel = r.kernel;
    c.variant = to_string(r.variant);
    c.tuning = r.tuning_name;
    c.status = to_string(r.status);
    c.time_per_rep_sec = r.time_per_rep_sec;
    c.checksum = r.checksum;  // raw long-double bits round-trip in the store
    c.problem_size = static_cast<std::int64_t>(r.problem_size);
    c.reps = static_cast<std::int64_t>(r.reps);
    c.attempts = static_cast<std::uint32_t>(r.attempts);
    c.error = r.error;
    store_writer_->add_cell(c);
    if (!r.hwc.values.empty()) {
      store::CounterRecord cr;
      cr.kernel = r.kernel;
      cr.variant = to_string(r.variant);
      cr.tuning = r.tuning_name;
      cr.source = r.hwc.source;
      cr.time_enabled_ns = r.hwc.time_enabled_ns;
      cr.time_running_ns = r.hwc.time_running_ns;
      cr.overhead_sec = r.hwc.overhead_sec;
      cr.values = r.hwc.values;
      store_writer_->add_counters(cr);
    }
    store_writer_->commit();
  } catch (const store::StoreError& e) {
    // Losing durability must not lose the sweep: latch the store off,
    // keep running, and surface the failure in the run summary.
    store_error_ = e.what();
    std::cerr << "warning: profile store disabled: " << e.what() << "\n";
    store_writer_.reset();
  }
}

std::map<std::string, std::string> Executor::store_config() const {
  std::map<std::string, std::string> config;
  config["suite"] = "rajaperf-repro";
  config["size_factor"] = std::to_string(params_.size_factor);
  if (params_.size_override) {
    config["size"] = std::to_string(*params_.size_override);
  }
  config["reps_factor"] = std::to_string(params_.reps_factor);
  config["npasses"] = std::to_string(params_.npasses);
  config["tunings"] = params_.run_tunings ? "all" : "default";
  // Only when on, so pre-existing runs keep their content addresses.
  if (params_.hwc) config["hwc"] = "on";
  config["isolate"] = to_string(params_.isolate);
  config["workers"] = std::to_string(params_.workers);
  auto join = [](const std::vector<std::string>& parts) {
    std::string out;
    for (const auto& p : parts) {
      if (!out.empty()) out += ",";
      out += p;
    }
    return out;
  };
  if (!params_.kernel_filter.empty()) {
    config["kernels"] = join(params_.kernel_filter);
  }
  if (!params_.group_filter.empty()) {
    std::vector<std::string> names;
    for (GroupID g : params_.group_filter) names.push_back(to_string(g));
    config["groups"] = join(names);
  }
  if (!params_.variant_filter.empty()) {
    std::vector<std::string> names;
    for (VariantID v : params_.variant_filter) names.push_back(to_string(v));
    config["variants"] = join(names);
  }
  if (!params_.fault_spec.empty()) {
    config["fault_spec"] = params_.fault_spec;
    config["fault_seed"] = std::to_string(params_.fault_seed);
  }
  // --resume is deliberately excluded: a resumed sweep is the same
  // logical run, so it content-addresses to the same run id.
  return config;
}

std::map<std::string, RunResult> Executor::load_progress() const {
  std::map<std::string, RunResult> out;
  const std::string path = progress_path();
  if (path.empty() || !std::filesystem::exists(path)) return out;
  std::ifstream is(path);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    json::Value v;
    try {
      v = json::Value::parse(line);
    } catch (const json::JsonError&) {
      // Torn record from a run that died mid-append (crash, power loss).
      // Drop it — the cell re-runs — but say so, since a silently shrunken
      // checkpoint looks like progress evaporating.
      std::cerr << "warning: " << path << ":" << line_no
                << ": dropping truncated checkpoint record; "
                   "the cell will be re-run\n";
      continue;
    }
    try {
      RunResult r;
      r.kernel = v.at("kernel").as_string();
      r.variant = variant_from_string(v.at("variant").as_string());
      r.tuning_name = v.at("tuning").as_string();
      r.status = run_status_from_string(v.at("status").as_string());
      r.time_per_rep_sec = v.number_or("time_per_rep_sec", -1.0);
      if (v.contains("checksum_hex")) {
        r.checksum =
            sandbox::checksum_from_hex(v.at("checksum_hex").as_string());
      } else {
        r.checksum = static_cast<long double>(v.number_or("checksum", 0.0));
      }
      r.problem_size =
          static_cast<Index_type>(v.number_or("problem_size", 0.0));
      r.reps = static_cast<Index_type>(v.number_or("reps", 0.0));
      r.setup_ms = v.number_or("setup_ms", 0.0);
      r.checksum_ms = v.number_or("checksum_ms", 0.0);
      r.pool_hits =
          static_cast<std::uint64_t>(v.number_or("pool_hits", 0.0));
      r.cache_hits =
          static_cast<std::uint64_t>(v.number_or("cache_hits", 0.0));
      r.error = v.string_or("error", "");
      // Source only: a restored cell's counters were not observed by this
      // process, so values stay empty (no counter record re-lands in the
      // store) but the run metadata keeps an honest hwc_source.
      r.hwc.source = v.string_or("hwc_source", "");
      out[cell_key(r.kernel, r.variant, r.tuning_name)] = r;  // latest wins
    } catch (const std::exception&) {
      continue;  // unknown kernel/variant from an older build — re-run it
    }
  }
  return out;
}

std::map<std::string, int> Executor::load_crash_counts() const {
  std::map<std::string, int> out;
  const std::string path = crashes_path();
  if (path.empty() || !std::filesystem::exists(path)) return out;
  std::ifstream is(path);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    json::Value v;
    try {
      v = json::Value::parse(line);
    } catch (const json::JsonError&) {
      // Torn record from a run that died mid-append — same failure mode as
      // progress.jsonl. Warn and drop: the crash it described is not
      // counted, so quarantine errs toward re-running the cell.
      std::cerr << "warning: " << path << ":" << line_no
                << ": dropping truncated crash record; "
                   "quarantine counting stays conservative\n";
      continue;
    }
    try {
      if (v.string_or("kind", "crash") != "crash") continue;
      const std::string key =
          cell_key(v.at("kernel").as_string(),
                   variant_from_string(v.at("variant").as_string()),
                   v.at("tuning").as_string());
      ++out[key];
    } catch (const std::exception&) {
      continue;  // foreign record from an older build — not a crash count
    }
  }
  return out;
}

void Executor::run() {
  results_.clear();
  channels_.clear();
  crash_counts_.clear();
  sandbox_stats_ = SandboxStats{};
  pool_stats_ = sandbox::PoolStats{};
  degraded_ = false;
  main_trace_ = cali::TraceData{};
  worker_traces_.clear();
  run_wall_sec_ = 0.0;
  trace_overhead_pct_ = 0.0;
  hwc_reason_.clear();
  hwc_overhead_pct_ = 0.0;
  run_start_ = std::chrono::steady_clock::now();

  if (params_.hwc) {
    // One probe, one actionable warning. The result is cached, so every
    // later attach (including post-fork in workers, which inherit the
    // parent's perf access) sees the same answer without re-probing.
    const hwc::Probe& probe = hwc::cached_probe();
    if (!probe.available) {
      hwc_reason_ = probe.reason;
      std::cerr << "warning: hardware counters unavailable — "
                << probe.reason
                << "; counter metrics degrade to the simulator "
                   "(hwc_source=simulated)\n";
    }
  }

  cali::TraceSink& sink = cali::TraceSink::instance();
  if (params_.trace) sink.enable();

  // (Re)arm the process-wide injector from this run's params; an empty
  // spec disarms it, so consecutive in-process runs are self-contained.
  faults::injector().configure(params_.fault_spec, params_.fault_seed);

  // Fresh memory-subsystem counters so per-run metadata describes this
  // sweep only (the pool keeps its cached chunks — that reuse is the point).
  mem::pool().reset_stats();
  mem::data_cache().reset_stats();

  // The sweep plan: every (kernel, variant, tuning) cell passing filters.
  std::vector<Cell> cells;
  for (auto& kernel : kernels_) {
    for (VariantID vid : kernel->variants()) {
      if (!params_.wants_variant(vid)) continue;
      for (std::size_t tuning = 0; tuning < kernel->num_tunings();
           ++tuning) {
        if (!params_.run_tunings && tuning > 0) continue;
        cells.push_back(
            {kernel.get(), vid, tuning, kernel->tunings()[tuning]});
      }
    }
  }

  std::map<std::string, RunResult> prior;
  if (params_.resume) prior = load_progress();
  if (!params_.output_dir.empty()) {
    // Start a canonical checkpoint for this run; restored cells are
    // re-appended below, so the file always reflects the latest sweep.
    std::filesystem::create_directories(params_.output_dir);
    progress_buffer_.clear();
    std::ofstream(progress_path(), std::ios::trunc);
    if (params_.resume) {
      // Crash history survives resume so quarantine sticks.
      crash_counts_ = load_crash_counts();
    } else if (std::filesystem::exists(crashes_path())) {
      std::filesystem::remove(crashes_path());
    }
  }

  if (!params_.store_dir.empty()) {
    // Open (and if needed recover) the profile store, then land the run
    // under its content address. Store failures warn and disable — the
    // sweep itself must survive a broken disk.
    try {
      store_writer_ =
          std::make_unique<store::StoreWriter>(params_.store_dir);
      if (store_writer_->recovery().quarantined_bytes > 0) {
        std::cerr << "rperf-store: recovered torn journal tail ("
                  << store_writer_->recovery().quarantined_bytes
                  << " bytes quarantined to "
                  << store_writer_->recovery().quarantine_file << ")\n";
      }
      store_run_id_ = store_writer_->begin_run(store_config());
    } catch (const store::StoreError& e) {
      store_error_ = e.what();
      std::cerr << "warning: profile store disabled: " << e.what() << "\n";
      store_writer_.reset();
    }
  }

  {
    cali::TraceSpan sweep_span("sweep");
    if (params_.isolate == IsolationMode::None) {
      run_in_process(cells, prior);
    } else if (params_.workers > 0) {
      run_pooled(cells, prior);
    } else {
      run_sandboxed(cells, prior);
    }
  }

  run_wall_sec_ = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - run_start_)
                      .count();
  if (params_.trace && sink.enabled()) {
    main_trace_ = sink.flush();
    sink.disable();
    double overhead = main_trace_.overhead_sec;
    for (const cali::TraceData& t : worker_traces_) overhead += t.overhead_sec;
    trace_overhead_pct_ =
        run_wall_sec_ > 0.0 ? 100.0 * overhead / run_wall_sec_ : 0.0;
  }
  if (params_.hwc && run_wall_sec_ > 0.0) {
    double overhead = 0.0;
    for (const RunResult& r : results_) overhead += r.hwc.overhead_sec;
    hwc_overhead_pct_ = 100.0 * overhead / run_wall_sec_;
  }

  // Run-level metadata (the Adiak substitute), plus the failure taxonomy
  // of each (variant, tuning) slice of the sweep.
  const mem::PoolStats pool_stats = mem::pool().stats();
  const mem::CacheStats cache_stats = mem::data_cache().stats();
  for (auto& [key, channel] : channels_) {
    channel.set_metadata("variant", to_string(key.first));
    channel.set_metadata("tuning", key.second);
    channel.set_metadata("suite", "rajaperf-repro");
    channel.set_metadata("size_factor", params_.size_factor);
    if (!params_.fault_spec.empty()) {
      channel.set_metadata("fault_spec", params_.fault_spec);
      channel.set_metadata("fault_seed", std::to_string(params_.fault_seed));
    }
    if (params_.trace) {
      channel.set_metadata("trace_overhead_pct", trace_overhead_pct_);
    }
    if (params_.hwc) {
      // Slice-level source: every cell measured -> "measured", every cell
      // simulated -> "simulated", a mix (e.g. a mid-run PMU failure)
      // -> "mixed". Cells without a sample (failed before completing)
      // don't vote; an empty slice reports what the probe would give it.
      bool any_measured = false;
      bool any_simulated = false;
      for (const RunResult& r : results_) {
        if (r.variant != key.first || r.tuning_name != key.second) continue;
        if (r.hwc.source == "measured") any_measured = true;
        if (r.hwc.source == "simulated") any_simulated = true;
      }
      const char* source = "measured";
      if (any_measured && any_simulated) {
        source = "mixed";
      } else if (any_simulated || (!any_measured && !hwc_reason_.empty())) {
        source = "simulated";
      }
      channel.set_metadata("hwc_source", source);
      if (!hwc_reason_.empty()) {
        channel.set_metadata("hwc_unavailable_reason", hwc_reason_);
      }
      channel.set_metadata("hwc_overhead_pct", hwc_overhead_pct_);
    }
    std::map<RunStatus, std::size_t> counts;
    for (const auto& r : results_) {
      if (r.variant == key.first && r.tuning_name == key.second) {
        ++counts[r.status];
      }
    }
    channel.set_metadata("cells_passed",
                         std::to_string(counts[RunStatus::Passed]));
    channel.set_metadata("cells_failed",
                         std::to_string(counts[RunStatus::Failed]));
    channel.set_metadata(
        "cells_checksum_invalid",
        std::to_string(counts[RunStatus::ChecksumInvalid]));
    channel.set_metadata("cells_timed_out",
                         std::to_string(counts[RunStatus::TimedOut]));
    channel.set_metadata("cells_skipped",
                         std::to_string(counts[RunStatus::Skipped]));
    channel.set_metadata("cells_crashed",
                         std::to_string(counts[RunStatus::Crashed]));
    channel.set_metadata("cells_out_of_memory",
                         std::to_string(counts[RunStatus::OutOfMemory]));
    channel.set_metadata("cells_killed",
                         std::to_string(counts[RunStatus::Killed]));
    if (params_.isolate != IsolationMode::None) {
      // Sandbox accounting: worker count and aggregate rusage, so a
      // profile records what its isolation cost (process-wide, same in
      // every slice).
      channel.set_metadata("isolate", to_string(params_.isolate));
      channel.set_metadata("sandbox_children",
                           std::to_string(sandbox_stats_.children));
      channel.set_metadata("sandbox_peak_child_rss_kb",
                           std::to_string(sandbox_stats_.peak_rss_kb));
      channel.set_metadata("sandbox_child_user_sec", sandbox_stats_.user_sec);
      channel.set_metadata("sandbox_child_sys_sec", sandbox_stats_.sys_sec);
      if (params_.workers > 0) {
        // Worker-pool supervision summary (process-wide, same in every
        // slice): how many workers were spawned/recycled and why, so a
        // profile records what crash containment cost the sweep.
        channel.set_metadata("pool_workers", std::to_string(params_.workers));
        channel.set_metadata("pool_spawns",
                             std::to_string(pool_stats_.spawns));
        channel.set_metadata("pool_recycles",
                             std::to_string(pool_stats_.recycles));
        channel.set_metadata(
            "pool_heartbeat_timeouts",
            std::to_string(pool_stats_.heartbeat_timeouts));
        channel.set_metadata("pool_deadline_kills",
                             std::to_string(pool_stats_.deadline_kills));
        channel.set_metadata("pool_corrupt_frames",
                             std::to_string(pool_stats_.corrupt_frames));
        channel.set_metadata("pool_peak_queue_depth",
                             std::to_string(pool_stats_.peak_queue_depth));
        channel.set_metadata("sandbox_degraded", degraded_ ? "true" : "false");
        // Effective payload transport: "shm" only when every spawned
        // worker actually got a ring; a partial ring failure is "mixed",
        // a total one (or --transport json) is "json".
        const char* transport = "json";
        if (params_.shm_transport && pool_stats_.shm_spawns > 0) {
          transport = pool_stats_.ring_fallbacks > 0 ? "mixed" : "shm";
        }
        channel.set_metadata("sandbox_transport", transport);
        channel.set_metadata("pool_affinity_hits",
                             std::to_string(pool_stats_.affinity_hits));
        channel.set_metadata("pool_ring_messages",
                             std::to_string(pool_stats_.ring_messages));
        channel.set_metadata("pool_ring_payload_bytes",
                             std::to_string(pool_stats_.ring_payload_bytes));
        channel.set_metadata("pool_ring_fallbacks",
                             std::to_string(pool_stats_.ring_fallbacks));
      }
    }
    // Memory-subsystem summary: how much memory the sweep reserved and how
    // well setup amortized across cells (process-wide, same in every slice).
    channel.set_metadata("pool_bytes_reserved",
                         std::to_string(pool_stats.bytes_reserved()));
    channel.set_metadata("pool_high_water_bytes",
                         std::to_string(pool_stats.high_water_bytes));
    channel.set_metadata("pool_alloc_calls",
                         std::to_string(pool_stats.alloc_calls));
    channel.set_metadata("pool_reuse_hits",
                         std::to_string(pool_stats.reuse_hits));
    channel.set_metadata("cache_hits", std::to_string(cache_stats.hits));
    channel.set_metadata("cache_misses", std::to_string(cache_stats.misses));
    channel.set_metadata("cache_stored_bytes",
                         std::to_string(cache_stats.stored_bytes));
    for (const auto& [k, v] : params_.metadata) {
      channel.set_metadata(k, v);
    }
  }

  if (store_writer_) {
    // Land the per-variant profiles and the run's aggregate counters,
    // then seal the journal into an immutable segment. After this the
    // run is durable and queryable via rperf-report --store.
    try {
      for (const auto& [key, channel] : channels_) {
        store_writer_->add_profile(to_string(key.first), key.second,
                                   cali::to_profile(channel));
      }
      std::map<std::string, double> summary;
      summary["wall_sec"] = run_wall_sec_;
      summary["cells"] = static_cast<double>(results_.size());
      summary["trace_overhead_pct"] = trace_overhead_pct_;
      summary["fault_fires"] =
          static_cast<double>(faults::injector().fires());
      store_writer_->add_trace_summary(summary);
      store_writer_->finish_run();
      // Seal summary on stderr: which segment the run landed in and
      // whether its query index (footer + manifest) made it to disk.
      // Index failures are fail-open — queries fall back to full scans
      // — so this is a warning, never a disabled store.
      const store::SealInfo& seal = store_writer_->last_seal();
      if (!seal.segment.empty()) {
        std::cerr << "rperf-store: sealed " << seal.segment << " ("
                  << seal.runs_indexed << " run(s) indexed, footer "
                  << seal.footer_bytes << " bytes, manifest "
                  << seal.manifest_runs << " run(s))\n";
        if (!seal.footer_ok || !seal.manifest_ok) {
          std::cerr << "warning: store index degraded (queries fall back "
                       "to full scans): "
                    << seal.index_error << "\n";
        }
      }
    } catch (const store::StoreError& e) {
      store_error_ = e.what();
      std::cerr << "warning: profile store disabled: " << e.what() << "\n";
      store_writer_.reset();
    }
  }
}

std::string Executor::hwc_source() const {
  bool any_measured = false;
  bool any_simulated = false;
  for (const RunResult& r : results_) {
    if (r.hwc.source == "measured") any_measured = true;
    if (r.hwc.source == "simulated") any_simulated = true;
  }
  if (any_measured && any_simulated) return "mixed";
  if (any_measured) return "measured";
  if (any_simulated) return "simulated";
  return "";
}

void Executor::run_in_process(const std::vector<Cell>& cells,
                              const std::map<std::string, RunResult>& prior) {
  bool stopped = false;
  for (const Cell& cell : cells) {
    RunResult r;
    r.kernel = cell.kernel->name();
    r.group = cell.kernel->group();
    r.variant = cell.vid;
    r.tuning = cell.tuning;
    r.tuning_name = cell.tuning_name;

    if (stopped) {
      r.status = RunStatus::Skipped;
      r.error = "sweep stopped by --no-keep-going after an earlier failure";
      results_.push_back(r);
      append_progress(r);
      continue;
    }
    if (const int isig = sandbox::interrupt_signal(); isig != 0) {
      r.status = RunStatus::Skipped;
      r.error = "interrupted by " + sandbox::signal_name(isig) +
                "; checkpoint flushed";
      results_.push_back(r);
      append_progress(r);
      continue;
    }

    const auto it = prior.find(cell_key(r.kernel, r.variant, r.tuning_name));
    if (it != prior.end() && it->second.status == RunStatus::Passed) {
      r = it->second;
      r.group = cell.kernel->group();
      r.tuning = cell.tuning;
      r.restored = true;
      cell.kernel->restore_result(cell.vid, cell.tuning, r.time_per_rep_sec,
                                  r.checksum);
      results_.push_back(r);
      append_progress(r);
      continue;
    }

    // Guarded execution with retry-with-backoff. The cell runs into a
    // scratch channel committed to the per-variant profile only on a pass,
    // so failed cells never leave partial regions in the output.
    for (int attempt = 0; attempt <= params_.retries; ++attempt) {
      if (attempt > 0 && params_.retry_backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            params_.retry_backoff_ms << (attempt - 1)));
      }
      cali::Channel scratch;
      r.attempts = attempt + 1;
      {
        cali::TraceSpan cell_span(
            cell_span_name(r.kernel, cell.vid, cell.tuning_name));
        r.status = run_cell_once(cell, scratch, r);
      }
      if (r.status == RunStatus::Passed) {
        channels_[{cell.vid, cell.tuning_name}].merge(scratch);
        break;
      }
      // A budget violation is deterministic; retrying only doubles the
      // damage. Failures and corrupt checksums may be transient.
      if (r.status == RunStatus::TimedOut) break;
    }
    sample_trace_counters();
    results_.push_back(r);
    append_progress(r);
    if (r.status != RunStatus::Passed && !params_.keep_going) stopped = true;
  }
}

void Executor::worker_main(int fd, const std::vector<const Cell*>& batch) {
  // The fork inherited the parent's buffers and epoch; drop the records
  // (the parent reports them) and re-zero onto a local clock, keeping the
  // fork-time offset so the parent can splice this chunk onto its timeline.
  cali::TraceSink& sink = cali::TraceSink::instance();
  if (sink.enabled()) sink.rezero_after_fork("rperf-worker");
  {
    json::Object hello;
    hello["type"] = "hello";
    hello["proto"] = sandbox::kProtocolVersion;
    hello["pid"] = static_cast<std::int64_t>(::getpid());
    write_json_line(fd, std::move(hello));
  }
  for (const Cell* cell : batch) {
    RunResult r;
    r.kernel = cell->kernel->name();
    r.variant = cell->vid;
    r.tuning = cell->tuning;
    r.tuning_name = cell->tuning_name;
    cali::Channel scratch;
    {
      cali::TraceSpan cell_span(
          cell_span_name(r.kernel, cell->vid, cell->tuning_name));
      r.status = run_cell_once(*cell, scratch, r);
    }
    sample_trace_counters();

    json::Object o;
    o["type"] = "cell";
    o["kernel"] = r.kernel;
    o["variant"] = to_string(r.variant);
    o["tuning"] = r.tuning_name;
    o["status"] = to_string(r.status);
    o["time_per_rep_sec"] = r.time_per_rep_sec;
    o["checksum"] = static_cast<double>(r.checksum);
    o["checksum_hex"] = sandbox::checksum_to_hex(r.checksum);
    o["problem_size"] = static_cast<std::int64_t>(r.problem_size);
    o["reps"] = static_cast<std::int64_t>(r.reps);
    o["setup_ms"] = r.setup_ms;
    o["checksum_ms"] = r.checksum_ms;
    o["pool_hits"] = static_cast<std::int64_t>(r.pool_hits);
    o["cache_hits"] = static_cast<std::int64_t>(r.cache_hits);
    hwc_to_json(r.hwc, o);
    if (!r.error.empty()) o["error"] = r.error;
    if (r.status == RunStatus::Passed) {
      // The parent only commits passing cells' regions, so only those
      // cross the pipe.
      o["profile"] = cali::profile_to_value(cali::to_profile(scratch));
    }
    write_json_line(fd, std::move(o));
  }
  if (sink.enabled()) {
    // Stream this worker's trace chunk before bye. Parents predating the
    // "trace" record type ignore unknown types, so the protocol version
    // holds at v1.
    json::Object tr;
    tr["type"] = "trace";
    tr["data"] = sink.flush().to_value();
    write_json_line(fd, std::move(tr));
  }
  {
    json::Object bye;
    bye["type"] = "bye";
    bye["injector"] = faults::injector().serialize_state();
    write_json_line(fd, std::move(bye));
  }
}

void Executor::run_sandboxed(const std::vector<Cell>& cells,
                             const std::map<std::string, RunResult>& prior) {
  // Worker granularity: one group of cells per worker. Cells are generated
  // kernel-major, so Kernel mode groups consecutive cells per kernel.
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  for (std::size_t b = 0; b < cells.size();) {
    std::size_t e = b + 1;
    if (params_.isolate == IsolationMode::Kernel) {
      while (e < cells.size() && cells[e].kernel == cells[b].kernel) ++e;
    }
    groups.emplace_back(b, e);
    b = e;
  }

  struct Pending {
    const Cell* cell = nullptr;
    RunResult r;
    int attempts = 0;  // executions consumed (parent-authoritative)
  };

  bool stopped = false;
  auto finalize = [&](RunResult& r) {
    sample_trace_counters();
    results_.push_back(r);
    append_progress(r);
    if (r.status != RunStatus::Passed && r.status != RunStatus::Skipped &&
        !params_.keep_going) {
      stopped = true;
    }
  };
  auto append_crash_line = [&](json::Object o) {
    const std::string path = crashes_path();
    if (path.empty()) return;
    o["t_ms"] = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - run_start_)
                    .count();
    std::ofstream os(path, std::ios::app);
    if (!os) return;  // forensics are best-effort; the sweep continues
    std::string line = json::Value(std::move(o)).dump();
    line.push_back('\n');
    os.write(line.data(), static_cast<std::streamsize>(line.size()));
  };

  for (const auto& [gb, ge] : groups) {
    // Resolve restores, quarantine, and stop/interrupt skips in the parent;
    // what remains is this group's worklist.
    std::vector<Pending> work;
    for (std::size_t i = gb; i < ge; ++i) {
      const Cell& cell = cells[i];
      RunResult r;
      r.kernel = cell.kernel->name();
      r.group = cell.kernel->group();
      r.variant = cell.vid;
      r.tuning = cell.tuning;
      r.tuning_name = cell.tuning_name;

      if (stopped) {
        r.status = RunStatus::Skipped;
        r.error = "sweep stopped by --no-keep-going after an earlier failure";
        finalize(r);
        continue;
      }
      if (const int isig = sandbox::interrupt_signal(); isig != 0) {
        r.status = RunStatus::Skipped;
        r.error = "interrupted by " + sandbox::signal_name(isig) +
                  "; checkpoint flushed";
        finalize(r);
        continue;
      }
      const std::string key = cell_key(r.kernel, r.variant, r.tuning_name);
      const auto it = prior.find(key);
      if (it != prior.end() && it->second.status == RunStatus::Passed) {
        r = it->second;
        r.group = cell.kernel->group();
        r.tuning = cell.tuning;
        r.restored = true;
        cell.kernel->restore_result(cell.vid, cell.tuning,
                                    r.time_per_rep_sec, r.checksum);
        finalize(r);
        continue;
      }
      const auto qc = crash_counts_.find(key);
      if (qc != crash_counts_.end() &&
          qc->second >= params_.quarantine_after) {
        r.status = RunStatus::Skipped;
        r.error = "quarantined after " + std::to_string(qc->second) +
                  " crashes; see crashes.jsonl";
        json::Object o;
        o["kind"] = "quarantine-skip";
        o["kernel"] = r.kernel;
        o["variant"] = to_string(r.variant);
        o["tuning"] = r.tuning_name;
        o["crashes"] = qc->second;
        append_crash_line(std::move(o));
        finalize(r);
        continue;
      }
      Pending p;
      p.cell = &cell;
      p.r = std::move(r);
      work.push_back(std::move(p));
    }

    // Spawn workers until the worklist drains. Each pass re-runs what the
    // previous worker did not finish (crash) plus any retry-eligible cells.
    while (!work.empty()) {
      if (stopped || sandbox::interrupt_signal() != 0) {
        const int isig = sandbox::interrupt_signal();
        for (auto& p : work) {
          p.r.status = RunStatus::Skipped;
          p.r.error =
              stopped
                  ? "sweep stopped by --no-keep-going after an earlier failure"
                  : "interrupted by " + sandbox::signal_name(isig) +
                        "; checkpoint flushed";
          finalize(p.r);
        }
        break;
      }

      sandbox::Limits limits;
      limits.address_space_bytes = params_.sandbox_mem_mb << 20;
      limits.cpu_seconds = params_.sandbox_cpu_seconds;
      if (params_.max_cell_seconds > 0.0) {
        limits.wall_deadline_sec =
            params_.max_cell_seconds * static_cast<double>(work.size());
      }

      std::vector<const Cell*> batch;
      batch.reserve(work.size());
      for (const auto& p : work) batch.push_back(p.cell);

      const sandbox::WorkerReport rep = [&] {
        // Parent-side span covering the worker's whole lifetime, so the
        // timeline shows fork/wait cost around the worker's own spans.
        cali::TraceSpan worker_span("worker");
        return sandbox::run_worker([&](int fd) { worker_main(fd, batch); },
                                   limits);
      }();
      ++sandbox_stats_.children;
      sandbox_stats_.peak_rss_kb =
          std::max(sandbox_stats_.peak_rss_kb, rep.usage.max_rss_kb);
      sandbox_stats_.user_sec += rep.usage.user_sec;
      sandbox_stats_.sys_sec += rep.usage.sys_sec;
#ifdef RPERF_SANDBOX_DIAG
      std::fprintf(stderr,
                   "[sandbox] worker done: cells=%zu %s rss=%ldkb "
                   "user=%.3fs sys=%.3fs wall=%.3fs\n",
                   batch.size(), rep.describe().c_str(), rep.usage.max_rss_kb,
                   rep.usage.user_sec, rep.usage.sys_sec, rep.wall_sec);
#endif

      // Fold the worker's records back, in worklist order.
      std::size_t idx = 0;
      bool proto_ok = true;
      std::vector<Pending> requeue;
      for (const std::string& line : rep.lines) {
        json::Value v;
        try {
          v = json::Value::parse(line);
        } catch (const json::JsonError&) {
          continue;  // torn line right at the crash point
        }
        const std::string type = v.string_or("type", "");
        if (type == "hello") {
          if (static_cast<int>(v.number_or("proto", 0.0)) !=
              sandbox::kProtocolVersion) {
            proto_ok = false;
            break;
          }
        } else if (type == "cell" && idx < work.size()) {
          Pending& p = work[idx++];
          ++p.attempts;
          try {
            decode_cell_record(v, p.r);
          } catch (const std::exception& e) {
            p.r.status = RunStatus::Crashed;
            p.r.error = std::string("malformed worker record: ") + e.what();
          }
          p.r.attempts = p.attempts;
          if (p.r.status == RunStatus::Passed) {
            if (v.contains("profile")) {
              const cali::Channel scratch = cali::channel_from_profile(
                  cali::profile_from_value(v.at("profile")));
              channels_[{p.cell->vid, p.cell->tuning_name}].merge(scratch);
            }
            p.cell->kernel->restore_result(p.cell->vid, p.cell->tuning,
                                           p.r.time_per_rep_sec, p.r.checksum);
            finalize(p.r);
          } else if ((p.r.status == RunStatus::Failed ||
                      p.r.status == RunStatus::ChecksumInvalid) &&
                     p.attempts <= params_.retries && !stopped) {
            if (params_.retry_backoff_ms > 0) {
              std::this_thread::sleep_for(std::chrono::milliseconds(
                  params_.retry_backoff_ms << (p.attempts - 1)));
            }
            requeue.push_back(std::move(p));
          } else {
            finalize(p.r);
          }
        } else if (type == "trace") {
          try {
            worker_traces_.push_back(
                cali::TraceData::from_value(v.at("data")));
          } catch (const std::exception&) {
            // Malformed chunk: the timeline loses one worker's spans; the
            // sweep's results are unaffected.
          }
        } else if (type == "bye") {
          // Fold the worker's fault-budget consumption and rng progress
          // back, so the sweep's fault schedule is worker-count invariant.
          faults::injector().deserialize_state(v.string_or("injector", ""));
        }
      }

      // A worker that terminated with cells unreported died on the first
      // one: decode its death into that cell's status and record forensics.
      const bool worker_failed =
          !rep.clean() || !proto_ok || idx < work.size();
      if (worker_failed && idx < work.size()) {
        Pending& p = work[idx++];
        ++p.attempts;
        p.r.attempts = p.attempts;
        if (proto_ok) {
          decode_worker_failure(rep, params_.sandbox_mem_mb, p.r);
        } else {
          p.r.status = RunStatus::Crashed;
          p.r.error = "worker spoke an unknown protocol version";
        }
        const std::string key =
            cell_key(p.r.kernel, p.r.variant, p.r.tuning_name);
        const int crashes = ++crash_counts_[key];
        const bool quarantined = crashes >= params_.quarantine_after;

        json::Object o;
        o["kind"] = "crash";
        o["kernel"] = p.r.kernel;
        o["variant"] = to_string(p.r.variant);
        o["tuning"] = p.r.tuning_name;
        o["status"] = to_string(p.r.status);
        o["crashes"] = crashes;
        o["attempts"] = p.attempts;
        o["exit_code"] = rep.exit_code;
        o["deadline_killed"] =
            rep.exit == sandbox::WorkerExit::DeadlineKilled;
        if (rep.signal != 0) {
          o["signal"] = rep.signal;
          o["signal_name"] = sandbox::signal_name(rep.signal);
        }
        o["error"] = p.r.error;
        if (!rep.stderr_tail.empty()) o["stderr_tail"] = rep.stderr_tail;
        o["max_rss_kb"] = static_cast<std::int64_t>(rep.usage.max_rss_kb);
        o["user_sec"] = rep.usage.user_sec;
        o["sys_sec"] = rep.usage.sys_sec;
        o["wall_sec"] = rep.wall_sec;
        o["quarantined"] = quarantined;
        append_crash_line(std::move(o));

        // The worker died before reporting, so its injector state is lost;
        // consume the budget the fatal fault definitionally spent.
        if (faults::injector().active()) {
          if (const auto kind = implied_fault_kind(p.r, rep.signal)) {
            faults::injector().note_external_fire(*kind, p.r.kernel);
          }
        }

        const bool retryable = p.r.status == RunStatus::Crashed ||
                               p.r.status == RunStatus::OutOfMemory;
        if (retryable && !quarantined && p.attempts <= params_.retries &&
            !stopped) {
          if (params_.retry_backoff_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                params_.retry_backoff_ms << (p.attempts - 1)));
          }
          requeue.push_back(std::move(p));
        } else {
          finalize(p.r);
        }
      }

      // Cells the dead worker never reached go back on the worklist
      // without consuming an attempt.
      for (std::size_t j = idx; j < work.size(); ++j) {
        requeue.push_back(std::move(work[j]));
      }
      work = std::move(requeue);
    }
  }
}

std::string Executor::worker_run_cell(const std::string& payload) {
  const json::Value v = json::Value::parse(payload);
  const std::string kname = v.at("kernel").as_string();
  // The job carries the parent's injector state as of dispatch time, so a
  // retried cell sees spent budgets instead of re-firing the fault that
  // killed its first worker.
  faults::injector().deserialize_state(v.string_or("injector", ""));

  // Wire fault: go silent. The heartbeat thread stops beating and the job
  // never completes — from the supervisor's seat, a wedged worker.
  if (faults::injector().fire_wire_fault(faults::FaultKind::HeartbeatDrop,
                                         kname)) {
    sandbox::WorkerPool::suppress_heartbeats();
    for (int i = 0; i < 6000; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::_Exit(1);  // safety valve; the supervisor kills us long before
  }

  RunResult r;
  r.kernel = kname;
  r.variant = variant_from_string(v.at("variant").as_string());
  r.tuning = static_cast<std::size_t>(v.number_or("tuning_index", 0.0));
  r.tuning_name = v.string_or("tuning", "default");

  std::optional<cali::Profile> profile;
  KernelBase* kernel = find_kernel(kname);
  if (kernel == nullptr) {
    r.status = RunStatus::Failed;
    r.error = "unknown kernel in job payload: " + kname;
  } else {
    const Cell cell{kernel, r.variant, r.tuning, r.tuning_name};
    cali::Channel scratch;
    {
      cali::TraceSpan cell_span(
          cell_span_name(r.kernel, r.variant, r.tuning_name));
      r.status = run_cell_once(cell, scratch, r);
    }
    sample_trace_counters();
    if (r.status == RunStatus::Passed) {
      profile = cali::to_profile(scratch);
    }
  }

  // Post-job injector state rides back on every result so the parent's
  // fault schedule stays worker-count invariant (same fold as v1 "bye",
  // but per job since this worker may die before any orderly goodbye).
  const std::string injector_state = faults::injector().serialize_state();

  // Wire fault: torn result. Under the Json transport the frame goes out
  // with a bad CRC; under Shm the next ring chunk's sequence stamp is
  // mangled. Either way the supervisor must reject the record and recycle
  // this worker rather than mis-parse it.
  if (faults::injector().fire_wire_fault(faults::FaultKind::ProtocolCorrupt,
                                         kname)) {
    sandbox::WorkerPool::corrupt_next_frame();
  }

  if (sandbox::WorkerPool::current_transport() == sandbox::Transport::Shm) {
    return encode_cell_record_wire(r, injector_state,
                                   profile ? &*profile : nullptr);
  }

  json::Object o;
  if (profile) o["profile"] = cali::profile_to_value(*profile);
  o["status"] = to_string(r.status);
  o["time_per_rep_sec"] = r.time_per_rep_sec;
  o["checksum"] = static_cast<double>(r.checksum);
  o["checksum_hex"] = sandbox::checksum_to_hex(r.checksum);
  o["problem_size"] = static_cast<std::int64_t>(r.problem_size);
  o["reps"] = static_cast<std::int64_t>(r.reps);
  o["setup_ms"] = r.setup_ms;
  o["checksum_ms"] = r.checksum_ms;
  o["pool_hits"] = static_cast<std::int64_t>(r.pool_hits);
  o["cache_hits"] = static_cast<std::int64_t>(r.cache_hits);
  hwc_to_json(r.hwc, o);
  if (!r.error.empty()) o["error"] = r.error;
  o["injector"] = injector_state;
  return json::Value(std::move(o)).dump();
}

void Executor::run_pooled(const std::vector<Cell>& cells,
                          const std::map<std::string, RunResult>& prior) {
  // Pooled dispatch is always per-cell: one job per (kernel, variant,
  // tuning), pulled by the supervisor as queue room opens up.
  struct PooledJob {
    const Cell* cell = nullptr;
    RunResult r;
    int attempts = 0;  // executions consumed (parent-authoritative)
    bool done = false;
  };

  bool stopped = false;
  auto finalize = [&](RunResult& r) {
    sample_trace_counters();
    results_.push_back(r);
    append_progress(r);
    if (r.status != RunStatus::Passed && r.status != RunStatus::Skipped &&
        !params_.keep_going) {
      stopped = true;
    }
  };
  auto append_crash_line = [&](json::Object o) {
    const std::string path = crashes_path();
    if (path.empty()) return;
    o["t_ms"] = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - run_start_)
                    .count();
    std::ofstream os(path, std::ios::app);
    if (!os) return;  // forensics are best-effort; the sweep continues
    std::string line = json::Value(std::move(o)).dump();
    line.push_back('\n');
    os.write(line.data(), static_cast<std::streamsize>(line.size()));
  };

  // Resolve restores, quarantine, and interrupt skips up front; what
  // remains becomes the pool's job list.
  std::vector<PooledJob> jobs;
  for (const Cell& cell : cells) {
    RunResult r;
    r.kernel = cell.kernel->name();
    r.group = cell.kernel->group();
    r.variant = cell.vid;
    r.tuning = cell.tuning;
    r.tuning_name = cell.tuning_name;

    if (const int isig = sandbox::interrupt_signal(); isig != 0) {
      r.status = RunStatus::Skipped;
      r.error = "interrupted by " + sandbox::signal_name(isig) +
                "; checkpoint flushed";
      finalize(r);
      continue;
    }
    const std::string key = cell_key(r.kernel, r.variant, r.tuning_name);
    const auto it = prior.find(key);
    if (it != prior.end() && it->second.status == RunStatus::Passed) {
      r = it->second;
      r.group = cell.kernel->group();
      r.tuning = cell.tuning;
      r.restored = true;
      cell.kernel->restore_result(cell.vid, cell.tuning, r.time_per_rep_sec,
                                  r.checksum);
      finalize(r);
      continue;
    }
    const auto qc = crash_counts_.find(key);
    if (qc != crash_counts_.end() && qc->second >= params_.quarantine_after) {
      r.status = RunStatus::Skipped;
      r.error = "quarantined after " + std::to_string(qc->second) +
                " crashes; see crashes.jsonl";
      json::Object o;
      o["kind"] = "quarantine-skip";
      o["kernel"] = r.kernel;
      o["variant"] = to_string(r.variant);
      o["tuning"] = r.tuning_name;
      o["crashes"] = qc->second;
      append_crash_line(std::move(o));
      finalize(r);
      continue;
    }
    PooledJob p;
    p.cell = &cell;
    p.r = std::move(r);
    jobs.push_back(std::move(p));
  }

  sandbox::PoolClient client;
  client.on_worker_start = [] {
    cali::TraceSink& sink = cali::TraceSink::instance();
    if (sink.enabled()) sink.rezero_after_fork("rperf-pool-worker");
  };
  client.run_job = [this](const std::string& payload) {
    return worker_run_cell(payload);
  };
  client.final_payload = [] {
    cali::TraceSink& sink = cali::TraceSink::instance();
    if (!sink.enabled()) return std::string();
    if (sandbox::WorkerPool::current_transport() ==
        sandbox::Transport::Shm) {
      wire::Writer w;
      w.begin_blob();
      cali::trace_to_wire(sink.flush(), w);
      return w.take();
    }
    json::Object o;
    o["trace"] = sink.flush().to_value();
    return json::Value(std::move(o)).dump();
  };
  client.on_final = [this](const std::string& payload) {
    if (payload.empty()) return;
    try {
      if (wire::is_wire_blob(payload)) {
        wire::Reader rd(payload);
        rd.expect_blob();
        worker_traces_.push_back(cali::trace_from_wire(rd));
        return;
      }
      const json::Value v = json::Value::parse(payload);
      if (v.contains("trace")) {
        worker_traces_.push_back(cali::TraceData::from_value(v.at("trace")));
      }
    } catch (const std::exception&) {
      // Malformed chunk: the timeline loses one worker's spans; the
      // sweep's results are unaffected.
    }
  };
  client.before_dispatch = [&](sandbox::Job& job) {
    const PooledJob& p = jobs[job.id];
    json::Object o;
    o["kernel"] = p.r.kernel;
    o["variant"] = to_string(p.r.variant);
    o["tuning_index"] = static_cast<std::int64_t>(p.cell->tuning);
    o["tuning"] = p.r.tuning_name;
    // Current state, captured at dispatch — not enqueue — time, so a retry
    // after a fatal fire carries the decremented budget.
    o["injector"] = faults::injector().serialize_state();
    job.payload = json::Value(std::move(o)).dump();
  };
  client.on_result = [&](const sandbox::Job& job,
                         const std::string& result) -> sandbox::Disposition {
    PooledJob& p = jobs[job.id];
    ++p.attempts;
    p.r.attempts = p.attempts;
    try {
      std::optional<cali::Profile> profile;
      if (wire::is_wire_blob(result)) {
        // v3 binary record: fixed-width fields, checksum as raw
        // long-double bits, profile merged without a JSON round-trip.
        std::string injector_state;
        decode_cell_record_wire(result, p.r, injector_state, profile);
        faults::injector().deserialize_state(injector_state);
      } else {
        const json::Value v = json::Value::parse(result);
        decode_cell_record(v, p.r);
        faults::injector().deserialize_state(v.string_or("injector", ""));
        if (v.contains("profile")) {
          profile = cali::profile_from_value(v.at("profile"));
        }
      }
      if (p.r.status == RunStatus::Passed) {
        if (profile) {
          const cali::Channel scratch = cali::channel_from_profile(*profile);
          channels_[{p.cell->vid, p.cell->tuning_name}].merge(scratch);
        }
        p.cell->kernel->restore_result(p.cell->vid, p.cell->tuning,
                                       p.r.time_per_rep_sec, p.r.checksum);
      }
    } catch (const std::exception& e) {
      p.r.status = RunStatus::Crashed;
      p.r.error = std::string("malformed worker record: ") + e.what();
    }
    if ((p.r.status == RunStatus::Failed ||
         p.r.status == RunStatus::ChecksumInvalid) &&
        p.attempts <= params_.retries && !stopped) {
      if (params_.retry_backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            params_.retry_backoff_ms << (p.attempts - 1)));
      }
      return sandbox::Disposition::Retry;
    }
    finalize(p.r);
    p.done = true;
    return stopped ? sandbox::Disposition::Abort : sandbox::Disposition::Done;
  };
  client.on_failure = [&](const sandbox::Job& job,
                          const sandbox::JobFailure& f)
      -> sandbox::Disposition {
    PooledJob& p = jobs[job.id];
    ++p.attempts;
    p.r.attempts = p.attempts;
    switch (f.reason) {
      case sandbox::FailReason::DeadlineKilled:
        p.r.status = RunStatus::Killed;
        p.r.error = "worker killed past the per-cell wall deadline";
        break;
      case sandbox::FailReason::HeartbeatTimeout:
      case sandbox::FailReason::ProtocolCorrupt:
        p.r.status = RunStatus::Crashed;
        p.r.error = f.describe();
        break;
      case sandbox::FailReason::WorkerDied: {
        // Reuse the fork-per-batch classifier by reconstructing its report.
        sandbox::WorkerReport rep;
        if (f.exited) {
          rep.exit_code = f.exit_code;
          rep.exit = f.exit_code == sandbox::kOomExitCode
                         ? sandbox::WorkerExit::OomExit
                         : f.exit_code == 0 ? sandbox::WorkerExit::CleanExit
                                            : sandbox::WorkerExit::NonzeroExit;
        } else {
          rep.exit = sandbox::WorkerExit::Signaled;
          rep.signal = f.signal;
        }
        rep.usage = f.usage;
        rep.stderr_tail = f.stderr_tail;
        decode_worker_failure(rep, params_.sandbox_mem_mb, p.r);
        break;
      }
    }

    const std::string key = cell_key(p.r.kernel, p.r.variant, p.r.tuning_name);
    const int crashes = ++crash_counts_[key];
    const bool quarantined = crashes >= params_.quarantine_after;

    json::Object o;
    o["kind"] = "crash";
    o["kernel"] = p.r.kernel;
    o["variant"] = to_string(p.r.variant);
    o["tuning"] = p.r.tuning_name;
    o["status"] = to_string(p.r.status);
    o["reason"] = sandbox::to_string(f.reason);
    o["crashes"] = crashes;
    o["attempts"] = p.attempts;
    o["exit_code"] = f.exit_code;
    o["deadline_killed"] = f.reason == sandbox::FailReason::DeadlineKilled;
    if (!f.exited && f.signal != 0) {
      o["signal"] = f.signal;
      o["signal_name"] = sandbox::signal_name(f.signal);
    }
    o["error"] = p.r.error;
    if (!f.stderr_tail.empty()) o["stderr_tail"] = f.stderr_tail;
    o["max_rss_kb"] = static_cast<std::int64_t>(f.usage.max_rss_kb);
    o["user_sec"] = f.usage.user_sec;
    o["sys_sec"] = f.usage.sys_sec;
    o["quarantined"] = quarantined;
    append_crash_line(std::move(o));

    // The worker died before reporting, so its injector state is lost;
    // consume the budget the fatal fault definitionally spent. The wire
    // kinds imply themselves; process deaths imply segv/abort/oom/hang.
    if (faults::injector().active()) {
      if (f.reason == sandbox::FailReason::HeartbeatTimeout) {
        faults::injector().note_external_fire(faults::FaultKind::HeartbeatDrop,
                                              p.r.kernel);
      } else if (f.reason == sandbox::FailReason::ProtocolCorrupt) {
        faults::injector().note_external_fire(
            faults::FaultKind::ProtocolCorrupt, p.r.kernel);
      } else if (const auto kind = implied_fault_kind(p.r, f.signal)) {
        faults::injector().note_external_fire(*kind, p.r.kernel);
      }
    }

    const bool retryable = p.r.status == RunStatus::Crashed ||
                           p.r.status == RunStatus::OutOfMemory;
    if (retryable && !quarantined && p.attempts <= params_.retries &&
        !stopped) {
      if (params_.retry_backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            params_.retry_backoff_ms << (p.attempts - 1)));
      }
      return sandbox::Disposition::Retry;
    }
    finalize(p.r);
    p.done = true;
    return stopped ? sandbox::Disposition::Abort : sandbox::Disposition::Done;
  };

  sandbox::PoolConfig cfg;
  cfg.workers = params_.workers;
  cfg.heartbeat_interval_ms = params_.heartbeat_interval_ms;
  cfg.heartbeat_timeout_ms = params_.heartbeat_timeout_ms;
  cfg.job_deadline_sec = params_.max_cell_seconds;
  cfg.limits.address_space_bytes = params_.sandbox_mem_mb << 20;
  // cfg.limits.cpu_seconds stays 0: RLIMIT_CPU accrues across a pooled
  // worker's whole life and would misfire mid-sweep (see PoolConfig).
  cfg.transport = params_.shm_transport ? sandbox::Transport::Shm
                                        : sandbox::Transport::Json;
  // Affinity dispatch scans the pending queue for unclaimed keys, so give
  // it a window wider than the default 2x workers: enough to see past one
  // kernel's contiguous (variant, tuning) cells to the next kernel.
  cfg.queue_capacity = static_cast<std::size_t>(params_.workers) * 8;
  // Measured kernel loops must not preempt each other: cap concurrent
  // jobs at the machine's hardware concurrency. Extra workers beyond the
  // cap still hold their warm dataset-cache partitions and serve as
  // crash-containment spares. On machines with cores >= workers this
  // changes nothing.
  cfg.max_inflight = std::max(1u, std::thread::hardware_concurrency());

  // Seed the wire dictionary before the pool forks: every worker inherits
  // the sweep's vocabulary (statuses, kernel/region names, metric keys) by
  // memory image, so v3 records encode them as fixed-width refs with no
  // per-blob definitions — Caliper's "attributes established at hello
  // time", done by fork inheritance instead of a handshake.
  if (params_.shm_transport) {
    wire::Dictionary& d = wire::dict();
    for (const RunStatus s :
         {RunStatus::Passed, RunStatus::Failed, RunStatus::ChecksumInvalid,
          RunStatus::TimedOut, RunStatus::Skipped, RunStatus::Crashed,
          RunStatus::OutOfMemory, RunStatus::Killed}) {
      d.intern(to_string(s));
    }
    for (const char* metric :
         {"reps", "bytes_read", "bytes_written", "flops", "problem_size"}) {
      d.intern(metric);
    }
    if (params_.hwc) {
      for (const std::string& name : hwc::papi_event_names()) d.intern(name);
      d.intern("measured");
      d.intern("simulated");
    }
    for (const PooledJob& p : jobs) {
      d.intern(p.r.kernel);
      d.intern(to_string(p.cell->vid));
      d.intern(p.r.tuning_name);
    }
  }

  std::size_t next = 0;
  const auto source = [&]() -> std::optional<sandbox::Job> {
    if (stopped) return std::nullopt;
    if (next >= jobs.size()) return std::nullopt;
    sandbox::Job job;
    // Cells of one kernel share a dispatch-affinity key, steering them to
    // the worker whose dataset cache that kernel already warmed.
    job.affinity = affinity_key(jobs[next].r.kernel);
    job.id = next++;
    return job;  // payload is filled by before_dispatch
  };

  sandbox::PoolOutcome outcome = sandbox::PoolOutcome::Completed;
  sandbox::WorkerPool pool(cfg, client);
  if (!jobs.empty()) {
    cali::TraceSpan pool_span("worker-pool");
    outcome = pool.run(source);
  }
  pool_stats_ = pool.stats();
  sandbox_stats_.children = pool_stats_.spawns;
  sandbox_stats_.peak_rss_kb = pool_stats_.peak_rss_kb;
  sandbox_stats_.user_sec = pool_stats_.child_user_sec;
  sandbox_stats_.sys_sec = pool_stats_.child_sys_sec;
#ifdef RPERF_SANDBOX_DIAG
  std::fprintf(stderr,
               "[sandbox] pool done: spawns=%zu recycles=%zu hb_timeouts=%zu "
               "deadline_kills=%zu corrupt=%zu jobs=%zu/%zu\n",
               pool_stats_.spawns, pool_stats_.recycles,
               pool_stats_.heartbeat_timeouts, pool_stats_.deadline_kills,
               pool_stats_.corrupt_frames, pool_stats_.jobs_completed,
               pool_stats_.jobs_dispatched);
#endif

  if (outcome == sandbox::PoolOutcome::SpawnFailed && !stopped &&
      sandbox::interrupt_signal() == 0) {
    // Graceful degradation: the pool could not keep a single worker alive
    // (fork failure, respawn budgets exhausted). Finish the sweep
    // in-process rather than losing it. Safe with respect to the OpenMP
    // fork caveat — no parallel region has run in this process yet, and no
    // further forks follow. Crash containment is lost, and the run says
    // so: the "sandbox_degraded" metadata flag and each cell's record.
    degraded_ = true;
    std::cerr << "warning: worker pool unavailable ("
              << pool_stats_.spawn_failures
              << " spawn failures); degrading to in-process execution — "
                 "crash containment disabled for the rest of this sweep\n";
    for (PooledJob& p : jobs) {
      if (p.done) continue;
      if (stopped || sandbox::interrupt_signal() != 0) break;
      for (; p.attempts <= params_.retries; ) {
        if (p.attempts > 0 && params_.retry_backoff_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              params_.retry_backoff_ms << (p.attempts - 1)));
        }
        cali::Channel scratch;
        p.r.attempts = ++p.attempts;
        {
          cali::TraceSpan cell_span(
              cell_span_name(p.r.kernel, p.cell->vid, p.cell->tuning_name));
          p.r.status = run_cell_once(*p.cell, scratch, p.r);
        }
        if (p.r.status == RunStatus::Passed) {
          channels_[{p.cell->vid, p.cell->tuning_name}].merge(scratch);
          break;
        }
        if (p.r.status == RunStatus::TimedOut) break;
        if (p.r.status != RunStatus::Failed &&
            p.r.status != RunStatus::ChecksumInvalid) {
          break;
        }
      }
      finalize(p.r);
      p.done = true;
    }
  }

  // Anything still unresolved (interrupt, --no-keep-going abort, pool
  // failure mid-degradation) is recorded as skipped so every planned cell
  // has a terminal record.
  const int isig = sandbox::interrupt_signal();
  for (PooledJob& p : jobs) {
    if (p.done) continue;
    p.r.status = RunStatus::Skipped;
    if (stopped) {
      p.r.error = "sweep stopped by --no-keep-going after an earlier failure";
    } else if (isig != 0) {
      p.r.error = "interrupted by " + sandbox::signal_name(isig) +
                  "; checkpoint flushed";
    } else {
      p.r.error = "not executed: worker pool unavailable";
    }
    finalize(p.r);
    p.done = true;
  }
}

void Executor::write_trace(const std::string& path) const {
  std::vector<cali::TraceData> parts;
  parts.reserve(1 + worker_traces_.size());
  parts.push_back(main_trace_);
  parts.insert(parts.end(), worker_traces_.begin(), worker_traces_.end());
  std::map<std::string, std::string> meta;
  meta["suite"] = "rajaperf-repro";
  {
    std::ostringstream os;
    os << trace_overhead_pct_;
    meta["trace_overhead_pct"] = os.str();
  }
  {
    std::ostringstream os;
    os << run_wall_sec_;
    meta["run_wall_sec"] = os.str();
  }
  const std::string text = cali::chrome_trace_json(parts, meta);
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open trace file for writing: " + path);
  }
  os << text << '\n';
}

KernelBase* Executor::find_kernel(const std::string& name) const {
  for (const auto& k : kernels_) {
    if (k->name() == name) return k.get();
  }
  return nullptr;
}

std::vector<cali::Profile> Executor::profiles() const {
  std::vector<cali::Profile> out;
  out.reserve(channels_.size());
  for (const auto& [key, channel] : channels_) {
    out.push_back(cali::to_profile(channel));
  }
  return out;
}

namespace {

void merge_profile_node(cali::ProfileNode& dst, const cali::ProfileNode& src) {
  dst.time_sec += src.time_sec;
  dst.visit_count += src.visit_count;
  for (const auto& [k, v] : src.metrics) dst.metrics[k] += v;
  for (const auto& child : src.children) {
    cali::ProfileNode* match = nullptr;
    for (auto& c : dst.children) {
      if (c.name == child.name) {
        match = &c;
        break;
      }
    }
    if (match != nullptr) {
      merge_profile_node(*match, child);
    } else {
      dst.children.push_back(child);
    }
  }
}

/// Fold `extra`'s regions into `prof` (metadata: prof wins on conflicts).
void merge_profile(cali::Profile& prof, const cali::Profile& extra) {
  for (const auto& root : extra.roots) {
    cali::ProfileNode* match = nullptr;
    for (auto& r : prof.roots) {
      if (r.name == root.name) {
        match = &r;
        break;
      }
    }
    if (match != nullptr) {
      merge_profile_node(*match, root);
    } else {
      prof.roots.push_back(root);
    }
  }
  for (const auto& [k, v] : extra.metadata) prof.metadata.emplace(k, v);
}

}  // namespace

void Executor::write_profiles() const {
  if (params_.output_dir.empty()) return;
  std::filesystem::create_directories(params_.output_dir);
  for (const auto& [key, channel] : channels_) {
    const std::string path = params_.output_dir + "/" +
                             to_string(key.first) + "." + key.second +
                             ".cali.json";
    cali::Profile prof = cali::to_profile(channel);
    // Under --resume the channel holds only the cells that re-ran; the
    // on-disk profile holds exactly the restored (previously passed) cells,
    // so folding the two keeps per-variant profiles complete.
    if (params_.resume && std::filesystem::exists(path)) {
      merge_profile(prof, cali::read_profile(path));
    }
    cali::write_profile(prof, path);
  }
}

std::map<RunStatus, std::size_t> Executor::status_counts() const {
  std::map<RunStatus, std::size_t> counts;
  for (RunStatus s : all_run_statuses()) counts[s] = 0;
  for (const auto& r : results_) ++counts[r.status];
  return counts;
}

bool Executor::all_passed() const {
  for (const auto& r : results_) {
    if (r.status != RunStatus::Passed) return false;
  }
  return true;
}

std::string Executor::status_report() const {
  const auto counts = status_counts();
  std::size_t restored = 0;
  for (const auto& r : results_) {
    if (r.restored) ++restored;
  }
  std::ostringstream os;
  os << "cells: " << counts.at(RunStatus::Passed) << " passed, "
     << counts.at(RunStatus::Failed) << " failed, "
     << counts.at(RunStatus::ChecksumInvalid) << " checksum-invalid, "
     << counts.at(RunStatus::TimedOut) << " timed-out, "
     << counts.at(RunStatus::Crashed) << " crashed, "
     << counts.at(RunStatus::OutOfMemory) << " out-of-memory, "
     << counts.at(RunStatus::Killed) << " killed, "
     << counts.at(RunStatus::Skipped) << " skipped";
  if (restored > 0) os << " (" << restored << " restored from checkpoint)";
  os << '\n';
  for (const auto& r : results_) {
    if (r.status == RunStatus::Passed) continue;
    os << "  " << to_string(r.status) << " " << r.kernel << " ["
       << to_string(r.variant) << "/" << r.tuning_name << "]";
    if (r.attempts > 1) os << " after " << r.attempts << " attempts";
    if (!r.error.empty()) os << ": " << r.error;
    os << '\n';
  }
  return os.str();
}

namespace {

/// Variants present in the sweep's default-tuning results, in enum order.
std::vector<VariantID> report_variants(const std::vector<RunResult>& results) {
  std::vector<VariantID> vids;
  for (VariantID v : all_variants()) {
    for (const auto& r : results) {
      if (r.variant == v && r.tuning_name == "default") {
        vids.push_back(v);
        break;
      }
    }
  }
  return vids;
}

/// Default-tuning result for (kernel, variant); nullptr when not swept.
const RunResult* find_result(const std::vector<RunResult>& results,
                             const std::string& kernel, VariantID v) {
  for (const auto& r : results) {
    if (r.kernel == kernel && r.variant == v && r.tuning_name == "default") {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

std::string Executor::timing_report() const {
  const std::vector<VariantID> vids = report_variants(results_);

  std::ostringstream os;
  os << std::left << std::setw(32) << "Kernel";
  for (VariantID v : vids) os << std::right << std::setw(16) << to_string(v);
  os << '\n';
  for (const auto& kernel : kernels_) {
    os << std::left << std::setw(32) << kernel->name();
    for (VariantID v : vids) {
      const RunResult* r = find_result(results_, kernel->name(), v);
      if (r != nullptr && r->status == RunStatus::Passed) {
        os << std::right << std::setw(16) << std::scientific
           << std::setprecision(3) << r->time_per_rep_sec;
      } else if (r != nullptr) {
        os << std::right << std::setw(16) << status_marker(r->status);
      } else {
        os << std::right << std::setw(16) << "--";
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string Executor::checksum_report() const {
  const std::vector<VariantID> vids = report_variants(results_);

  std::ostringstream os;
  os << std::left << std::setw(32) << "Kernel";
  for (VariantID v : vids) os << std::right << std::setw(22) << to_string(v);
  os << '\n';
  for (const auto& kernel : kernels_) {
    os << std::left << std::setw(32) << kernel->name();
    for (VariantID v : vids) {
      const RunResult* r = find_result(results_, kernel->name(), v);
      if (r != nullptr && r->status == RunStatus::Passed) {
        os << std::right << std::setw(22) << std::scientific
           << std::setprecision(12) << static_cast<double>(r->checksum);
      } else if (r != nullptr) {
        os << std::right << std::setw(22) << status_marker(r->status);
      } else {
        os << std::right << std::setw(22) << "--";
      }
    }
    os << '\n';
  }
  return os.str();
}

bool Executor::checksums_consistent(std::string* details) const {
  // Variants of a kernel must agree within each tuning (different tunings
  // may legitimately compute different configurations). Cells that did not
  // pass are excluded: their failure is already reported as a RunStatus.
  auto cell_passed = [&](const std::string& kernel,
                         const std::string& tuning_name, VariantID v) {
    for (const auto& r : results_) {
      if (r.kernel == kernel && r.variant == v &&
          r.tuning_name == tuning_name) {
        return r.status == RunStatus::Passed;
      }
    }
    // No recorded result (e.g. kernel executed directly in tests): fall
    // back to the kernel's own record.
    return true;
  };

  bool ok = true;
  std::ostringstream os;
  for (const auto& kernel : kernels_) {
    for (std::size_t tuning = 0; tuning < kernel->num_tunings(); ++tuning) {
      const std::string& tname = kernel->tunings()[tuning];
      long double reference = 0.0L;
      bool have_reference = false;
      VariantID ref_vid = VariantID::Base_Seq;
      for (VariantID v : kernel->variants()) {
        if (!kernel->was_run(v, tuning)) continue;
        if (!cell_passed(kernel->name(), tname, v)) continue;
        if (!have_reference) {
          reference = kernel->checksum(v, tuning);
          ref_vid = v;
          have_reference = true;
          continue;
        }
        const long double cs = kernel->checksum(v, tuning);
        if (!checksums_match(reference, cs, params_.checksum_tolerance)) {
          ok = false;
          os << kernel->name() << " [" << tname
             << "]: " << to_string(ref_vid) << "="
             << static_cast<double>(reference) << " vs " << to_string(v)
             << "=" << static_cast<double>(cs) << '\n';
        }
      }
    }
  }
  if (details != nullptr) *details = os.str();
  return ok;
}

}  // namespace rperf::suite
