// KernelBase — the contract every suite kernel implements.
//
// A kernel is a self-contained loop computation with several programming-
// model variants that all produce the same answer. Subclasses:
//   * declare group, features, complexity, default size and reps in their
//     constructor, and register the variants they implement;
//   * allocate + deterministically initialize data in setUp();
//   * execute `run_reps` repetitions of the computation in runVariant();
//   * return an order-stable checksum of the outputs in computeChecksum();
//   * release data in tearDown().
//
// `execute()` drives the lifecycle, times the repetition loop, annotates a
// Caliper-substitute region named after the kernel, and attributes the
// analytic metrics (bytes read/written, FLOPs) to that region — exactly the
// integration pattern the paper describes.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "instrument/channel.hpp"
#include "machine/traits.hpp"
#include "suite/run_params.hpp"
#include "suite/types.hpp"

namespace rperf::suite {

/// Thrown when a kernel exceeds its per-kernel wall-clock budget
/// (RunParams::max_kernel_seconds); classified as RunStatus::TimedOut.
class KernelTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class KernelBase {
 public:
  KernelBase(std::string base_name, GroupID group, const RunParams& params);
  virtual ~KernelBase() = default;

  KernelBase(const KernelBase&) = delete;
  KernelBase& operator=(const KernelBase&) = delete;

  // ----- identity -----
  /// Full name, e.g. "Stream_TRIAD".
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Name without the group prefix, e.g. "TRIAD".
  [[nodiscard]] const std::string& base_name() const { return base_name_; }
  [[nodiscard]] GroupID group() const { return group_; }
  [[nodiscard]] Complexity complexity() const { return complexity_; }
  [[nodiscard]] bool has_feature(FeatureID f) const {
    return (features_ & static_cast<std::uint32_t>(f)) != 0u;
  }
  [[nodiscard]] std::vector<FeatureID> features() const;
  [[nodiscard]] bool has_variant(VariantID v) const;
  [[nodiscard]] std::vector<VariantID> variants() const;

  /// Tunings: named execution-parameter configurations (e.g. tile sizes,
  /// scheduling policies). Every kernel has at least "default".
  [[nodiscard]] const std::vector<std::string>& tunings() const {
    return tunings_;
  }
  [[nodiscard]] std::size_t num_tunings() const { return tunings_.size(); }

  // ----- sizing -----
  [[nodiscard]] Index_type default_prob_size() const { return default_size_; }
  [[nodiscard]] Index_type actual_prob_size() const { return actual_size_; }
  [[nodiscard]] Index_type run_reps() const { return reps_; }

  // ----- modeling inputs -----
  /// Analytic metrics (per repetition) + structural traits. Valid after
  /// construction; kernels fill the analytic fields from their actual size.
  [[nodiscard]] const machine::KernelTraits& traits() const { return traits_; }

  // ----- execution -----
  /// Run one variant under one tuning: setUp -> timed repetitions
  /// (npasses, min taken) -> checksum -> tearDown, with Caliper-substitute
  /// annotations on `channel`. Throws std::invalid_argument for an
  /// unavailable variant or out-of-range tuning, and KernelTimeout when the
  /// run exceeds RunParams::max_kernel_seconds (checked between passes).
  /// When any lifecycle stage throws, tearDown is still attempted so a
  /// failed cell cannot leak allocations into the rest of the sweep;
  /// tearDown must therefore tolerate being called after a failed setUp.
  void execute(VariantID vid, std::size_t tuning, cali::Channel& channel);
  void execute(VariantID vid, cali::Channel& channel) {
    execute(vid, 0, channel);
  }
  /// As above on the process-default channel.
  void execute(VariantID vid);

  /// Seconds per repetition for the fastest pass; negative when the
  /// (variant, tuning) pair has not been executed.
  [[nodiscard]] double time_per_rep(VariantID vid,
                                    std::size_t tuning = 0) const;
  /// Checksum recorded by the last execution of the (variant, tuning).
  [[nodiscard]] long double checksum(VariantID vid,
                                     std::size_t tuning = 0) const;
  [[nodiscard]] bool was_run(VariantID vid, std::size_t tuning = 0) const;

  /// Install a previously recorded (time, checksum) pair without executing,
  /// so resumed sweeps produce complete reports and checksum validation.
  void restore_result(VariantID vid, std::size_t tuning, double time_per_rep,
                      long double checksum);

  // ----- setup-cost observability (valid after execute()) -----
  /// Total seconds spent in setUp across all passes of the last execute().
  [[nodiscard]] double last_setup_sec() const { return last_setup_sec_; }
  /// Total seconds spent in computeChecksum across all passes.
  [[nodiscard]] double last_checksum_sec() const { return last_checksum_sec_; }
  /// Pool free-list hits / dataset-cache hits during the last execute().
  [[nodiscard]] std::uint64_t last_pool_hits() const { return last_pool_hits_; }
  [[nodiscard]] std::uint64_t last_cache_hits() const {
    return last_cache_hits_;
  }

 protected:
  // ----- subclass lifecycle hooks -----
  virtual void setUp(VariantID vid) = 0;
  virtual void runVariant(VariantID vid) = 0;
  virtual long double computeChecksum(VariantID vid) = 0;
  virtual void tearDown(VariantID vid) = 0;

  // ----- subclass configuration helpers (call from constructor) -----
  void set_default_size(Index_type n);
  void set_default_reps(Index_type reps);
  void set_complexity(Complexity c) { complexity_ = c; }
  void add_feature(FeatureID f) {
    features_ |= static_cast<std::uint32_t>(f);
  }
  void add_variant(VariantID v);
  void add_all_variants();
  /// Register an additional named tuning (index = registration order;
  /// "default" is always index 0).
  void add_tuning(const std::string& name);
  /// The tuning index of the currently executing run (valid inside
  /// setUp/runVariant/computeChecksum/tearDown).
  [[nodiscard]] std::size_t current_tuning() const { return tuning_; }
  /// Mutable traits for subclasses to fill in.
  machine::KernelTraits& traits_rw() { return traits_; }

  [[nodiscard]] const RunParams& params() const { return params_; }

 private:
  void finalize_sizing();

  std::string base_name_;
  std::string name_;
  GroupID group_;
  RunParams params_;  // by value: kernels outlive caller-provided params
  Complexity complexity_ = Complexity::N;
  std::uint32_t features_ = 0u;
  std::vector<VariantID> variants_;

  Index_type default_size_ = 100000;
  Index_type default_reps_ = 10;
  Index_type actual_size_ = 100000;
  Index_type reps_ = 10;
  bool sized_ = false;

  machine::KernelTraits traits_;
  std::vector<std::string> tunings_{"default"};
  std::size_t tuning_ = 0;

  std::map<std::pair<VariantID, std::size_t>, double> time_per_rep_;
  std::map<std::pair<VariantID, std::size_t>, long double> checksums_;

  double last_setup_sec_ = 0.0;
  double last_checksum_sec_ = 0.0;
  std::uint64_t last_pool_hits_ = 0;
  std::uint64_t last_cache_hits_ = 0;
};

}  // namespace rperf::suite
