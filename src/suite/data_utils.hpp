// Deterministic data initialization and checksum helpers.
//
// All variants of a kernel must see bit-identical input data so their
// checksums can be compared; initialization therefore uses a fixed-seed
// linear congruential generator rather than std::random_device.
#pragma once

#include <cstdint>
#include <vector>

#include "suite/types.hpp"

namespace rperf::suite {

/// Deterministic uniform doubles in (0, 1).
void init_data(std::vector<double>& v, Index_type n, std::uint32_t seed = 7u);

/// Fill with a constant.
void init_data_const(std::vector<double>& v, Index_type n, double value);

/// Linear ramp: v[i] = lo + i * (hi - lo) / n.
void init_data_ramp(std::vector<double>& v, Index_type n, double lo,
                    double hi);

/// Deterministic uniform integers in [lo, hi].
void init_int_data(std::vector<int>& v, Index_type n, int lo, int hi,
                   std::uint32_t seed = 7u);

/// Order-stable weighted checksum: sum of data[i] * w(i) with a small
/// repeating weight so permutations of the data are (almost surely)
/// detected. Accumulates in long double.
[[nodiscard]] long double calc_checksum(const double* data, Index_type n);
[[nodiscard]] long double calc_checksum(const std::vector<double>& data);
[[nodiscard]] long double calc_checksum(const int* data, Index_type n);

/// Relative agreement test used for cross-variant validation.
[[nodiscard]] bool checksums_match(long double a, long double b,
                                   double rel_tol);

}  // namespace rperf::suite
