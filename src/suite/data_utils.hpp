// Deterministic data initialization and checksum helpers.
//
// All variants of a kernel must see bit-identical input data so their
// checksums can be compared; initialization therefore uses a fixed-seed
// linear congruential generator rather than std::random_device.
//
// Since the rperf::mem subsystem landed, kernel working sets live in
// Real_vec / Int_vec — std::vectors backed by the pooled arena allocator —
// and the fills run blocked (optionally in parallel) via mem::fill_* with
// jump-ahead, producing streams bit-identical to the original serial LCG
// for any thread count. Random datasets are additionally memoized by
// mem::data_cache() so repeated variants of a kernel copy rather than
// regenerate their inputs. `set_legacy_setup(true)` restores the original
// serial fill and checksum implementations; bench/sweep_throughput uses it
// (together with disabling the pool and cache) as the pre-PR baseline.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "faults/injector.hpp"
#include "mem/pool.hpp"
#include "suite/types.hpp"

namespace rperf::suite {

/// Kernel working-set vector types: pooled, 64-byte aligned, and default-
/// initialized on resize (every element is overwritten by an init_data*
/// call, so the usual zero-fill would be wasted work).
using Real_vec = std::vector<double, mem::PoolAllocator<double>>;
using Int_vec = std::vector<int, mem::PoolAllocator<int>>;

/// Legacy-setup mode: route fills and checksums through the original
/// serial implementations (single LCG chain, element-at-a-time long double
/// checksum). Only bench/sweep_throughput should turn this on.
void set_legacy_setup(bool on);
[[nodiscard]] bool legacy_setup();

namespace detail {

void fill_random_dispatch(double* dst, Index_type n, std::uint32_t seed);
void fill_const_dispatch(double* dst, Index_type n, double value);
void fill_ramp_dispatch(double* dst, Index_type n, double lo, double hi);
void fill_int_random_dispatch(int* dst, Index_type n, int lo, int hi,
                              std::uint32_t seed);

template <typename T, typename Alloc>
void prepare(std::vector<T, Alloc>& v, Index_type n) {
  if constexpr (!std::is_same_v<Alloc, mem::PoolAllocator<T>>) {
    // Pooled vectors hit the injector inside Pool::allocate; anything else
    // bypasses the pool, so fire the alloc fault hook here to keep the
    // PR-1 failure surface intact.
    faults::injector().on_alloc(static_cast<std::size_t>(n) * sizeof(T));
  }
  v.resize(static_cast<std::size_t>(n));
}

}  // namespace detail

/// Deterministic uniform doubles in (0, 1).
template <typename Alloc>
void init_data(std::vector<double, Alloc>& v, Index_type n,
               std::uint32_t seed = 7u) {
  detail::prepare(v, n);
  detail::fill_random_dispatch(v.data(), n, seed);
}

/// Fill with a constant.
template <typename Alloc>
void init_data_const(std::vector<double, Alloc>& v, Index_type n,
                     double value) {
  detail::prepare(v, n);
  detail::fill_const_dispatch(v.data(), n, value);
}

/// Linear ramp: v[i] = lo + i * (hi - lo) / n.
template <typename Alloc>
void init_data_ramp(std::vector<double, Alloc>& v, Index_type n, double lo,
                    double hi) {
  detail::prepare(v, n);
  detail::fill_ramp_dispatch(v.data(), n, lo, hi);
}

/// Deterministic uniform integers in [lo, hi].
template <typename Alloc>
void init_int_data(std::vector<int, Alloc>& v, Index_type n, int lo, int hi,
                   std::uint32_t seed = 7u) {
  detail::prepare(v, n);
  detail::fill_int_random_dispatch(v.data(), n, lo, hi, seed);
}

/// Order-stable weighted checksum: sum of data[i] * w(i) with w(i) =
/// (i % 7) + 1, so permutations of the data are (almost surely) detected.
///
/// The blocking and fold order are explicit and fixed: consecutive
/// 4096-element blocks; within a block four stride-4 double lanes are
/// accumulated and folded lane 0..3 into a long double block partial;
/// block partials are folded in ascending block order into the result.
/// Every quantity depends only on (data, n), never on the thread count or
/// schedule, so the value is bit-identical for 1, 2, or 8 threads and for
/// pooled, cached, or freshly allocated buffers.
[[nodiscard]] long double calc_checksum(const double* data, Index_type n);
[[nodiscard]] long double calc_checksum(const int* data, Index_type n);

template <typename Alloc>
[[nodiscard]] long double calc_checksum(const std::vector<double, Alloc>& v) {
  return calc_checksum(v.data(), static_cast<Index_type>(v.size()));
}
template <typename Alloc>
[[nodiscard]] long double calc_checksum(const std::vector<int, Alloc>& v) {
  return calc_checksum(v.data(), static_cast<Index_type>(v.size()));
}

/// Relative agreement test used for cross-variant validation.
[[nodiscard]] bool checksums_match(long double a, long double b,
                                   double rel_tol);

}  // namespace rperf::suite
