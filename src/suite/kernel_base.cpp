#include "suite/kernel_base.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "faults/injector.hpp"
#include "instrument/trace_sink.hpp"
#include "mem/cache.hpp"
#include "mem/pool.hpp"

namespace rperf::suite {

KernelBase::KernelBase(std::string base_name, GroupID group,
                       const RunParams& params)
    : base_name_(std::move(base_name)),
      name_(to_string(group) + "_" + base_name_),
      group_(group),
      params_(params) {}

std::vector<FeatureID> KernelBase::features() const {
  std::vector<FeatureID> out;
  for (FeatureID f :
       {FeatureID::Forall, FeatureID::Kernel, FeatureID::Sort,
        FeatureID::Scan, FeatureID::Reduction, FeatureID::Atomic,
        FeatureID::View, FeatureID::Workgroup}) {
    if (has_feature(f)) out.push_back(f);
  }
  return out;
}

bool KernelBase::has_variant(VariantID v) const {
  return std::find(variants_.begin(), variants_.end(), v) != variants_.end();
}

std::vector<VariantID> KernelBase::variants() const { return variants_; }

void KernelBase::add_variant(VariantID v) {
  if (!has_variant(v)) variants_.push_back(v);
}

void KernelBase::add_all_variants() {
  for (VariantID v : all_variants()) add_variant(v);
}

void KernelBase::add_tuning(const std::string& name) {
  for (const auto& t : tunings_) {
    if (t == name) {
      throw std::invalid_argument(name_ + ": duplicate tuning " + name);
    }
  }
  tunings_.push_back(name);
}

void KernelBase::set_default_size(Index_type n) {
  default_size_ = n;
  finalize_sizing();
}

void KernelBase::set_default_reps(Index_type reps) {
  default_reps_ = reps;
  finalize_sizing();
}

void KernelBase::finalize_sizing() {
  if (params_.size_override.has_value()) {
    actual_size_ = *params_.size_override;
  } else {
    actual_size_ = static_cast<Index_type>(
        std::llround(static_cast<double>(default_size_) *
                     params_.size_factor));
  }
  actual_size_ = std::max<Index_type>(1, actual_size_);

  reps_ = static_cast<Index_type>(std::llround(
      static_cast<double>(default_reps_) * params_.reps_factor));
  reps_ = std::clamp(reps_, params_.min_reps, params_.max_reps);
  sized_ = true;
}

void KernelBase::execute(VariantID vid, std::size_t tuning,
                         cali::Channel& channel) {
  if (!has_variant(vid)) {
    throw std::invalid_argument(name_ + ": variant " + to_string(vid) +
                                " not available");
  }
  if (tuning >= tunings_.size()) {
    throw std::invalid_argument(name_ + ": no tuning index " +
                                std::to_string(tuning));
  }
  if (!sized_) finalize_sizing();
  tuning_ = tuning;

  using Clock = std::chrono::steady_clock;
  double best = -1.0;
  long double csum = 0.0L;

  last_setup_sec_ = 0.0;
  last_checksum_sec_ = 0.0;
  const mem::PoolStats pool_before = mem::pool().stats();
  const mem::CacheStats cache_before = mem::data_cache().stats();

  // Per-thread span stats accumulate on the process-wide sink keyed by the
  // kernel's region name; deltas across this execute() give this cell's
  // load-imbalance contribution.
  cali::TraceSink& sink = cali::TraceSink::instance();
  const bool tracing = sink.enabled();
  const std::uint32_t trace_name = tracing ? sink.intern(name_) : 0;
  const cali::RegionThreadStats tspans_before =
      tracing ? sink.instance_stats(trace_name) : cali::RegionThreadStats{};

  faults::ScopedCell cell(name_);
  faults::injector().on_lifecycle(name_);
  const auto budget_start = Clock::now();

  for (int pass = 0; pass < std::max(1, params_.npasses); ++pass) {
    const int injected_delay = faults::injector().slow_delay_ms(name_);
    if (injected_delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(injected_delay));
    }
    // Guarded lifecycle: if any stage throws, attempt tearDown so a failed
    // cell releases its data and cannot poison subsequent cells.
    try {
      {
        const auto setup_start = Clock::now();
        setUp(vid);
        last_setup_sec_ +=
            std::chrono::duration<double>(Clock::now() - setup_start).count();
      }
      {
        cali::ScopedRegion region(channel, name_);
        const auto start = Clock::now();
        runVariant(vid);
        const auto stop = Clock::now();
        const double elapsed =
            std::chrono::duration<double>(stop - start).count();
        const double per_rep = elapsed / static_cast<double>(reps_);
        if (best < 0.0 || per_rep < best) best = per_rep;

        // Attribute the paper's analytic metrics to the kernel region.
        const auto& t = traits_;
        channel.attribute_metric("reps", static_cast<double>(reps_));
        channel.attribute_metric("bytes_read",
                                 t.bytes_read * static_cast<double>(reps_));
        channel.attribute_metric(
            "bytes_written", t.bytes_written * static_cast<double>(reps_));
        channel.attribute_metric("flops",
                                 t.flops * static_cast<double>(reps_));
        channel.attribute_metric("problem_size",
                                 static_cast<double>(actual_size_));
      }
      {
        const auto csum_start = Clock::now();
        csum = computeChecksum(vid);
        last_checksum_sec_ +=
            std::chrono::duration<double>(Clock::now() - csum_start).count();
      }
      csum = faults::injector().corrupt_checksum(name_, csum);
    } catch (...) {
      try {
        tearDown(vid);
      } catch (...) {
        // The original exception carries the diagnosis.
      }
      throw;
    }
    tearDown(vid);

    // Watchdog: enforce the per-kernel wall-clock budget between passes.
    if (params_.max_kernel_seconds > 0.0) {
      const double spent =
          std::chrono::duration<double>(Clock::now() - budget_start).count();
      if (spent > params_.max_kernel_seconds) {
        throw KernelTimeout(name_ + ": exceeded budget of " +
                            std::to_string(params_.max_kernel_seconds) +
                            " s (spent " + std::to_string(spent) + " s)");
      }
    }
  }

  const mem::PoolStats pool_after = mem::pool().stats();
  const mem::CacheStats cache_after = mem::data_cache().stats();
  last_pool_hits_ = pool_after.reuse_hits - pool_before.reuse_hits;
  last_cache_hits_ = cache_after.hits - cache_before.hits;

  // Setup-cost observability: setup/checksum time sits outside the kernel
  // region's inclusive_time_sec, so recording it as region metrics never
  // perturbs the measured kernel time. attribute_metric_at leaves the
  // region's visit_count untouched.
  channel.attribute_metric_at(name_, "setup_ms", last_setup_sec_ * 1e3);
  channel.attribute_metric_at(name_, "checksum_ms", last_checksum_sec_ * 1e3);
  channel.attribute_metric_at(name_, "pool_hit",
                              static_cast<double>(last_pool_hits_));
  channel.attribute_metric_at(name_, "cache_hit",
                              static_cast<double>(last_cache_hits_));

  // Load-imbalance metrics from the traced OpenMP path. Max/mean thread
  // times are sums over parallel instances, so they stay meaningful when
  // channels merge; the imbalance ratio is their quotient for this cell.
  if (tracing && sink.enabled()) {
    const cali::RegionThreadStats after = sink.instance_stats(trace_name);
    const double d_max = after.sum_max_sec - tspans_before.sum_max_sec;
    const double d_mean = after.sum_mean_sec - tspans_before.sum_mean_sec;
    if (after.instances > tspans_before.instances && d_mean > 0.0) {
      channel.attribute_metric_at(name_, "tspan_max_ms", d_max * 1e3);
      channel.attribute_metric_at(name_, "tspan_mean_ms", d_mean * 1e3);
      channel.attribute_metric_at(name_, "load_imbalance", d_max / d_mean);
    }
  }

  time_per_rep_[{vid, tuning}] = best;
  checksums_[{vid, tuning}] = csum;
}

void KernelBase::restore_result(VariantID vid, std::size_t tuning,
                                double time_per_rep, long double checksum) {
  time_per_rep_[{vid, tuning}] = time_per_rep;
  checksums_[{vid, tuning}] = checksum;
}

void KernelBase::execute(VariantID vid) {
  execute(vid, cali::default_channel());
}

double KernelBase::time_per_rep(VariantID vid, std::size_t tuning) const {
  auto it = time_per_rep_.find({vid, tuning});
  return it == time_per_rep_.end() ? -1.0 : it->second;
}

long double KernelBase::checksum(VariantID vid, std::size_t tuning) const {
  auto it = checksums_.find({vid, tuning});
  return it == checksums_.end() ? 0.0L : it->second;
}

bool KernelBase::was_run(VariantID vid, std::size_t tuning) const {
  return time_per_rep_.count({vid, tuning}) > 0;
}

}  // namespace rperf::suite
