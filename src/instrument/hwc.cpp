#include "instrument/hwc.hpp"

#include <chrono>

#ifdef RPERF_HWC_DIAG
#include <cstdio>
#endif

namespace rperf::hwc {

namespace {
using Clock = std::chrono::steady_clock;
}

RegionCounterService::~RegionCounterService() {
  if (attached_ != nullptr) {
    attached_->remove_event_hook(hook_id_);
    attached_ = nullptr;
  }
}

bool RegionCounterService::attach(cali::Channel& channel) {
  if (attached_ != nullptr) {
    throw cali::AnnotationError(
        "RegionCounterService::attach: service is already attached to a "
        "channel; detach it first");
  }
  const Probe& p = cached_probe();
  if (!p.available) {
    reason_ = p.reason;
    return false;
  }
  const auto t0 = Clock::now();
  std::string err;
  const bool opened = group_.open(&err);
  sample_.overhead_sec += std::chrono::duration<double>(Clock::now() - t0)
                              .count();
  if (!opened) {
    reason_ = err;
    return false;
  }
  reason_.clear();
  stack_.clear();
  hook_id_ = channel.add_event_hook(
      [this](const std::string& region, bool is_begin, double) {
        on_event(region, is_begin);
      });
  attached_ = &channel;
  return true;
}

void RegionCounterService::detach(cali::Channel& channel) {
  if (attached_ == nullptr) return;  // no-op, same as EventTrace
  if (attached_ != &channel) {
    throw cali::AnnotationError(
        "RegionCounterService::detach: service is attached to a different "
        "channel");
  }
  channel.remove_event_hook(hook_id_);
  attached_ = nullptr;
  hook_id_ = 0;
  group_.close();
  stack_.clear();
}

void RegionCounterService::on_event(const std::string& region,
                                    bool is_begin) {
  if (!group_.opened()) return;  // a failed read latched the group closed
  const auto t0 = Clock::now();
  if (is_begin) {
    PerfEventGroup::Reading r;
    if (group_.read(&r)) {
      stack_.push_back(std::move(r));
    } else {
      // Fail open mid-flight: stop observing, keep the channel intact.
      reason_ = "perf group read failed; counters disabled mid-run";
      stack_.clear();
    }
  } else if (!stack_.empty()) {
    PerfEventGroup::Reading end;
    if (!group_.read(&end)) {
      reason_ = "perf group read failed; counters disabled mid-run";
      stack_.clear();
    } else {
      const PerfEventGroup::Reading begin = std::move(stack_.back());
      stack_.pop_back();
      // Only the outermost region attributes: inclusive semantics, and
      // attribute_metric_at targets top-level regions (which the closed
      // outermost region is).
      if (stack_.empty()) {
        const std::uint64_t d_enabled =
            end.time_enabled_ns - begin.time_enabled_ns;
        const std::uint64_t d_running =
            end.time_running_ns - begin.time_running_ns;
        const auto& names = group_.names();
        for (std::size_t i = 0;
             i < names.size() && i < end.values.size() &&
             i < begin.values.size();
             ++i) {
          const double scaled = scale_multiplexed(
              end.values[i] - begin.values[i], d_enabled, d_running);
          attached_->attribute_metric_at(region, names[i], scaled);
          sample_.values[names[i]] += scaled;
        }
        sample_.time_enabled_ns += d_enabled;
        sample_.time_running_ns += d_running;
        sample_.source = "measured";
        ++regions_;
#ifdef RPERF_HWC_DIAG
        std::fprintf(stderr,
                     "[hwc] %s: enabled=%llu ns running=%llu ns%s\n",
                     region.c_str(),
                     static_cast<unsigned long long>(d_enabled),
                     static_cast<unsigned long long>(d_running),
                     d_running < d_enabled ? " (multiplexed)" : "");
#endif
      }
    }
  }
  sample_.overhead_sec +=
      std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace rperf::hwc
