// Region counter service — the Caliper papi-service substitute, measured.
//
// Attaches to a Channel the way EventTrace does (multi-observer event
// hooks) and reads a per-thread perf event group at every region begin and
// end. At the end of each OUTERMOST region the raw deltas are scaled for
// multiplexing (time_enabled / time_running) and attributed to the region
// as metrics under the PAPI preset names, so profiles carry measured
// counters through exactly the plumbing the simulator uses.
//
// Attribution is inclusive and top-level only: kernel regions in the
// suite's scratch channels are top-level, and attribute_metric_at targets
// top-level regions. Nested begins/ends inside an open outer region are
// observed (the stack keeps pairing intact) but only the outer region
// receives metrics, mirroring inclusive_time_sec semantics.
//
// Fail-open contract: when perf events are unavailable (probe fails, the
// group cannot open) attach() leaves the service inactive and returns
// false — the channel keeps working untouched, reason() says why, and the
// caller is expected to fall back to the simulator. Attaching an
// already-attached service throws AnnotationError (same double-attach
// discipline as EventTrace).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "counters/perf_event.hpp"
#include "instrument/channel.hpp"

namespace rperf::hwc {

class RegionCounterService {
 public:
  RegionCounterService() = default;
  /// Detaches (if attached) and closes the event group.
  ~RegionCounterService();
  RegionCounterService(const RegionCounterService&) = delete;
  RegionCounterService& operator=(const RegionCounterService&) = delete;

  /// Open the per-thread event group and start observing `channel`.
  /// Returns true when counters are live; false (fail-open, channel
  /// untouched) when perf events are unavailable — reason() explains.
  /// Throws AnnotationError when this service is already attached.
  bool attach(cali::Channel& channel);
  /// Stop observing (removes only this service's hook). Detaching an
  /// unattached service is a no-op; detaching from the wrong channel
  /// throws AnnotationError.
  void detach(cali::Channel& channel);

  [[nodiscard]] bool attached() const { return attached_ != nullptr; }
  /// True when attached with an open, readable event group.
  [[nodiscard]] bool active() const { return attached() && group_.opened(); }
  /// Why attach() declined ("" while active).
  [[nodiscard]] const std::string& reason() const { return reason_; }

  /// Accumulated observation across all completed outermost regions since
  /// attach: multiplex-scaled totals under PAPI names, enabled/running
  /// window, and the service's own overhead. source == "measured" once at
  /// least one region completed.
  [[nodiscard]] const Sample& sample() const { return sample_; }
  /// Outermost regions completed under observation.
  [[nodiscard]] std::uint64_t regions_observed() const { return regions_; }

 private:
  void on_event(const std::string& region, bool is_begin);

  PerfEventGroup group_;
  cali::Channel* attached_ = nullptr;
  int hook_id_ = 0;
  std::string reason_;
  Sample sample_;
  std::uint64_t regions_ = 0;
  /// Begin-time snapshots, innermost last (only depth 0 attributes).
  std::vector<PerfEventGroup::Reading> stack_;
};

}  // namespace rperf::hwc
