// runtime-report — hierarchical text rendering of a channel or profile,
// mirroring Caliper's built-in runtime-report service: one row per region,
// indented by nesting depth, with inclusive/exclusive time and the share
// of total runtime.
#pragma once

#include <string>

#include "instrument/channel.hpp"
#include "instrument/profile.hpp"

namespace rperf::cali {

struct ReportOptions {
  /// Only show regions at or above this share of total time.
  double min_percent = 0.0;
  /// Truncate the tree below this depth (-1 = unlimited).
  int max_depth = -1;
  /// Also print one column per attributed metric found in the tree.
  bool show_metrics = false;
};

/// Render the hierarchical runtime report.
[[nodiscard]] std::string runtime_report(const Profile& profile,
                                         const ReportOptions& options = {});
[[nodiscard]] std::string runtime_report(const Channel& channel,
                                         const ReportOptions& options = {});

}  // namespace rperf::cali
