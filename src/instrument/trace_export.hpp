// Trace exporters and analyzers for TraceSink snapshots.
//
// `chrome_trace_json` renders one or more per-process TraceData chunks
// (the parent's plus any sandbox workers') as a Chrome trace-event JSON
// document that loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing: one process row per chunk, one thread row per
// recording thread, complete "X" events for spans, and "C" counter
// tracks for pool/cache hits and injected faults. Worker chunks carry a
// fork-time clock offset, so all processes share one timeline.
//
// The same module reads such files back (`chrome_trace_parse`) and
// derives the two human views `rperf-report` serves: top regions by
// exclusive time (`top_exclusive`) and folded stacks for flamegraph
// tools (`fold_stacks`, Brendan-Gregg "a;b;c value" lines).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "instrument/trace_sink.hpp"

namespace rperf::cali {

/// Serialize chunks as a Chrome trace-event JSON document. `meta` entries
/// land in the top-level "otherData" object (Perfetto ignores them; our
/// own parser and tests read them back).
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceData>& parts,
    const std::map<std::string, std::string>& meta = {});

/// One complete ("X") event read back from a Chrome trace file.
struct ChromeSpan {
  int pid = 0;
  int tid = 0;
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Parsed Chrome trace: spans plus enough structure to summarize.
struct ChromeTrace {
  std::vector<ChromeSpan> spans;
  std::map<int, std::string> process_names;     ///< pid -> "M" process_name
  std::size_t counter_events = 0;               ///< "C" events seen
  std::map<std::string, std::string> meta;      ///< top-level otherData
  [[nodiscard]] std::size_t process_count() const {
    return process_names.size();
  }
  /// Distinct (pid, tid) rows among span events.
  [[nodiscard]] std::size_t thread_count() const;
};

/// Parse a document written by chrome_trace_json (tolerates any Chrome
/// trace-event JSON with a traceEvents array). Throws json::JsonError on
/// malformed input.
[[nodiscard]] ChromeTrace chrome_trace_parse(const std::string& text);

/// A folded-stack line: semicolon-joined frames and exclusive microseconds.
struct FoldedLine {
  std::string stack;
  double usec = 0.0;
};

/// Collapse spans into folded stacks (per process, rooted at the process
/// name), merging identical paths. Feed to flamegraph.pl / speedscope.
[[nodiscard]] std::vector<FoldedLine> fold_stacks(const ChromeTrace& trace);

/// Per-region aggregate, ranked by exclusive time.
struct RegionTime {
  std::string name;
  double exclusive_us = 0.0;
  double inclusive_us = 0.0;
  std::uint64_t count = 0;
};

/// Top `n` regions by exclusive (self) time across all processes/threads.
[[nodiscard]] std::vector<RegionTime> top_exclusive(const ChromeTrace& trace,
                                                    std::size_t n);

}  // namespace rperf::cali
