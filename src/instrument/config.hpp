// ConfigManager — parse Caliper-style configuration strings.
//
// Caliper lets users request measurement services with strings like
//   "runtime-report,output=run.cali,profile.mpi"
// We support the same comma-separated spec grammar: each entry is either a
// bare spec name or key=value option attached to the most recent spec.
// Parenthesized option groups, e.g. "spot(output=x.cali,metrics=y)", are
// also accepted.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace rperf::cali {

struct ConfigSpec {
  std::string name;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string option_or(const std::string& key,
                                      const std::string& dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
};

class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ConfigManager {
 public:
  ConfigManager() = default;
  /// Parse a config string; throws ConfigError on malformed input.
  explicit ConfigManager(const std::string& config) { add(config); }

  /// Parse and append specs from a config string.
  void add(const std::string& config);

  [[nodiscard]] const std::vector<ConfigSpec>& specs() const { return specs_; }
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const ConfigSpec& get(const std::string& name) const;

 private:
  std::vector<ConfigSpec> specs_;
};

}  // namespace rperf::cali
