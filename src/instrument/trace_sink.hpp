// TraceSink — the low-overhead, thread-aware tracing service behind
// `rajaperf --trace` (the Caliper event-trace + timeline services
// substitute).
//
// Where `Channel` aggregates region visits into a tree and `EventTrace`
// records an ordered event log for one single-threaded channel, the sink
// records *fixed-size span records over an interned region-name table in
// per-thread buffers*, so OpenMP worker threads inside a `port::forall`
// parallel region can each record their own span without contending on a
// shared log. Records are appended complete (merged begin/end) at region
// close; buffers are harvested by `flush()` into a `TraceData` snapshot
// that the Chrome/Perfetto exporter (trace_export.hpp) turns into a
// timeline.
//
// Design points:
//   * `enabled()` is one relaxed atomic load — the disabled hot path costs
//     a branch. All record paths early-return when disabled.
//   * Region names are interned once (mutex-guarded map); records carry a
//     uint32 id, so appends never copy strings.
//   * Each thread owns a lazily registered buffer with a hard record cap;
//     past the cap, records are counted as dropped rather than grown —
//     a runaway sweep cannot OOM the tracer.
//   * Per-parallel-instance thread stats (max/mean thread time) aggregate
//     per region, giving the load-imbalance metrics the per-thread
//     measurement exists for.
//   * The sink accounts for its own cost: a calibration at enable() time
//     prices one record append, and flush/merge time is measured directly;
//     `overhead_sec()` is the basis of the run's `trace_overhead_pct`.
//   * Forked sandbox workers call `rezero_after_fork()`: inherited records
//     are dropped, the clock re-zeroes, and the fork-time offset from the
//     parent epoch is kept so one merged timeline covers all pids.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "instrument/json.hpp"

namespace rperf::cali {

/// One fixed-size trace record. `name` indexes the sink's interned name
/// table; timestamps are seconds since the owning process's trace epoch.
struct TraceRecord {
  enum class Kind : std::uint8_t {
    Span,        ///< a closed begin/end region on one thread
    ThreadSpan,  ///< one thread's share of a parallel region
    Counter,     ///< a sampled counter value (t1 unused, payload in value)
  };
  std::uint32_t name = 0;
  std::uint32_t tid = 0;  ///< logical thread id (registration order; 0 first)
  Kind kind = Kind::Span;
  std::int32_t depth = 0;  ///< nesting depth at open (Span only)
  double t0 = 0.0;
  double t1 = 0.0;
  double value = 0.0;
};

/// Aggregated per-region thread statistics across parallel instances.
struct RegionThreadStats {
  std::uint64_t instances = 0;  ///< parallel regions recorded
  double sum_max_sec = 0.0;     ///< sum over instances of slowest thread
  double sum_mean_sec = 0.0;    ///< sum over instances of mean thread time
  int max_threads = 0;          ///< widest team observed

  /// Load imbalance: slowest-thread time over mean thread time, aggregated
  /// across instances. 1.0 = perfectly balanced; 2.0 = the critical path
  /// is twice the average.
  [[nodiscard]] double imbalance() const {
    return sum_mean_sec > 0.0 ? sum_max_sec / sum_mean_sec : 1.0;
  }
};

/// Snapshot of one process's trace, as drained by TraceSink::flush().
/// Serializes compactly for the sandbox pipe so workers can stream their
/// chunk to the parent, which merges chunks into one timeline.
struct TraceData {
  int pid = 0;
  std::string process_name;
  /// Seconds between the merged timeline's epoch (the parent's) and this
  /// chunk's local epoch; add to every timestamp when merging.
  double clock_offset_sec = 0.0;
  std::vector<std::string> names;  ///< interned table; records index this
  std::vector<TraceRecord> records;
  std::map<std::string, RegionThreadStats> region_stats;
  std::uint64_t dropped = 0;
  double overhead_sec = 0.0;  ///< self-accounted tracing cost

  [[nodiscard]] json::Value to_value() const;
  [[nodiscard]] static TraceData from_value(const json::Value& v);
};

class TraceSink {
 public:
  /// Process-wide instance (mirrors cali::default_channel()).
  [[nodiscard]] static TraceSink& instance();

  /// Start a fresh trace: clears all buffers, re-zeroes the clock, and
  /// runs the append-cost calibration. Safe to call repeatedly.
  void enable();
  /// Stop recording. Buffered records survive until the next enable() or
  /// flush().
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Seconds since the trace epoch (monotonic).
  [[nodiscard]] double now_sec() const;

  /// Intern a region name; stable for the life of the sink.
  [[nodiscard]] std::uint32_t intern(const std::string& name);

  // ----- recording (no-ops when disabled) -----
  /// Open a span on the calling thread (per-thread open stack).
  void begin(std::uint32_t name);
  /// Close the innermost open span on the calling thread, appending one
  /// Span record. Unmatched ends are ignored (the sink never throws on
  /// the hot path; Channel does the strict validation).
  void end();
  /// Record one thread's share of a parallel region (forall traced path).
  void thread_span(std::uint32_t name, double t0, double t1);
  /// Sample a counter value at the current time.
  void counter(std::uint32_t name, double value);
  /// Record per-instance thread stats for a region (encountering thread).
  void note_parallel_instance(std::uint32_t name, double max_sec,
                              double mean_sec, int threads);
  /// Aggregated thread stats for a region so far (zeroes when untraced).
  [[nodiscard]] RegionThreadStats instance_stats(std::uint32_t name) const;

  /// Logical id of the calling thread (registers its buffer on first use).
  [[nodiscard]] std::uint32_t thread_id();
  /// Interned name of the calling thread's innermost open span, or the
  /// "(untracked)" sentinel when nothing is open. Lets a parallel loop
  /// name its per-thread spans after the region that encloses it.
  [[nodiscard]] std::uint32_t current_open_name();
  /// Interned id of the "(untracked)" sentinel region.
  [[nodiscard]] static std::uint32_t intern_untracked();

  // ----- fork support (sandboxed workers) -----
  /// In a freshly forked child: drop inherited records, re-zero the clock,
  /// and remember the offset from the parent's epoch so the parent can
  /// splice this process's chunk onto its own timeline.
  void rezero_after_fork(const std::string& process_name);

  // ----- harvest -----
  /// Drain every thread's buffer into a snapshot. Recording may continue
  /// afterwards (records land in the next flush). Flush cost is added to
  /// the *next* snapshot's overhead accounting.
  [[nodiscard]] TraceData flush();

  /// Records appended since enable() (approximate, relaxed counters).
  [[nodiscard]] std::uint64_t record_count() const {
    return appended_.load(std::memory_order_relaxed);
  }
  /// Estimated seconds this process has spent tracing: calibrated
  /// per-record cost times records appended, plus measured flush time.
  [[nodiscard]] double overhead_sec() const;

  /// Hard per-thread record cap (drops past this, counted).
  static constexpr std::size_t kMaxRecordsPerThread = 1u << 19;

 private:
  TraceSink() = default;

  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::mutex mutex;  // appends (owner thread) vs. flush (main thread)
    std::vector<TraceRecord> records;
    std::vector<std::pair<std::uint32_t, double>> open;  // begin stack
    std::uint64_t dropped = 0;
  };

  [[nodiscard]] ThreadBuffer& local_buffer();
  void append(ThreadBuffer& buf, const TraceRecord& rec);
  void calibrate();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> epoch_ns_{0};  // steady_clock ns at enable
  double parent_offset_sec_ = 0.0;          // set by rezero_after_fork
  std::string process_name_ = "rajaperf";

  mutable std::mutex registry_mutex_;  // buffers_ + names_ + stats_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t> name_ids_;
  std::map<std::uint32_t, RegionThreadStats> stats_;

  double per_record_cost_sec_ = 0.0;
  double flush_cost_sec_ = 0.0;
};

/// RAII span on the process-wide sink; no-op when tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const std::string& name) {
    TraceSink& sink = TraceSink::instance();
    if (sink.enabled()) {
      active_ = true;
      sink.begin(sink.intern(name));
    }
  }
  ~TraceSpan() {
    if (active_) TraceSink::instance().end();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_ = false;
};

}  // namespace rperf::cali
