#include "instrument/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace rperf::json {

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("json: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) > 0;
}

double Value::number_or(const std::string& key, double dflt) const {
  return contains(key) && at(key).is_number() ? at(key).as_number() : dflt;
}

std::string Value::string_or(const std::string& key,
                             const std::string& dflt) const {
  return contains(key) && at(key).is_string() ? at(key).as_string() : dflt;
}

bool Value::bool_or(const std::string& key, bool dflt) const {
  return contains(key) && at(key).is_bool() ? at(key).as_bool() : dflt;
}

namespace {

void escape_string(const std::string& s, std::string& out) {
  // +2 quotes; escapes grow the estimate but strings here rarely have any.
  out.reserve(out.size() + s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void format_number(double d, std::string& out) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else if (std::isfinite(d)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  } else {
    out += "null";  // JSON has no NaN/Inf
  }
}

/// Rough serialized size, used to pre-reserve the output buffer so the
/// per-cell hot path (progress.jsonl lines, profile dumps) appends into
/// one allocation instead of growing through many small reallocations.
std::size_t estimate_size(const Value& v) {
  if (v.is_null() || v.is_bool()) return 5;
  if (v.is_number()) return 24;
  if (v.is_string()) return v.as_string().size() + 8;
  std::size_t total = 4;
  if (v.is_array()) {
    for (const Value& e : v.as_array()) total += estimate_size(e) + 4;
    return total;
  }
  for (const auto& [k, e] : v.as_object()) {
    total += k.size() + estimate_size(e) + 8;
  }
  return total;
}

struct Dumper {
  int indent;
  std::string out;

  void newline(int depth) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  }

  void dump(const Value& v, int depth) {
    if (v.is_null()) {
      out += "null";
    } else if (v.is_bool()) {
      out += v.as_bool() ? "true" : "false";
    } else if (v.is_number()) {
      format_number(v.as_number(), out);
    } else if (v.is_string()) {
      escape_string(v.as_string(), out);
    } else if (v.is_array()) {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Value& e : a) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        dump(e, depth + 1);
      }
      newline(depth);
      out += ']';
    } else {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, e] : o) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        escape_string(k, out);
        out += indent < 0 ? ":" : ": ";
        dump(e, depth + 1);
      }
      newline(depth);
      out += '}';
    }
  }
};

struct Parser {
  const char* p;
  const char* end;

  [[noreturn]] void fail(const std::string& msg) {
    throw JsonError("json parse error: " + msg);
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  char peek() {
    if (p >= end) fail("unexpected end of input");
    return *p;
  }

  void expect(char c) {
    if (p >= end || *p != c) fail(std::string("expected '") + c + "'");
    ++p;
  }

  bool consume_literal(const char* lit) {
    const char* q = p;
    while (*lit) {
      if (q >= end || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p = q;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    while (true) {
      if (p >= end) fail("unterminated string");
      char c = *p++;
      if (c == '"') break;
      if (c == '\\') {
        if (p >= end) fail("bad escape");
        char e = *p++;
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'r': s += '\r'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'u': {
            if (end - p < 4) fail("bad \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = *p++;
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        s += c;
      }
    }
    return s;
  }

  double parse_number() {
    const char* start = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                       *p == '+')) {
      ++p;
    }
    double value = 0.0;
    auto [ptr, ec] = std::from_chars(start, p, value);
    if (ec != std::errc{} || ptr != p) fail("bad number");
    return value;
  }

  Value parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') {
      ++p;
      Object obj;
      skip_ws();
      if (peek() == '}') {
        ++p;
        return Value(std::move(obj));
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.emplace(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++p;
          continue;
        }
        expect('}');
        break;
      }
      return Value(std::move(obj));
    }
    if (c == '[') {
      ++p;
      Array arr;
      skip_ws();
      if (peek() == ']') {
        ++p;
        return Value(std::move(arr));
      }
      while (true) {
        arr.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++p;
          continue;
        }
        expect(']');
        break;
      }
      return Value(std::move(arr));
    }
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value(nullptr);
    return Value(parse_number());
  }
};

}  // namespace

std::string Value::dump(int indent) const {
  Dumper d{indent, {}};
  d.out.reserve(estimate_size(*this));
  d.dump(*this, 0);
  return d.out;
}

Value Value::parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  Value v = parser.parse_value();
  parser.skip_ws();
  if (parser.p != parser.end) throw JsonError("json: trailing characters");
  return v;
}

}  // namespace rperf::json
