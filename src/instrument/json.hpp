// Minimal JSON value, serializer, and parser.
//
// The instrumentation library serializes performance profiles to JSON
// (playing the role of Caliper's .cali format) and the analysis toolkit
// reads them back. Supports the full JSON grammar except \u escapes beyond
// ASCII; numbers are stored as double, with integral values serialized
// without a decimal point.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace rperf::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// Thrown on malformed input or type-mismatched access.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(std::uint64_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(data_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(data_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(data_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(data_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(data_);
  }

  [[nodiscard]] bool as_bool() const { return get<bool>("bool"); }
  [[nodiscard]] double as_number() const { return get<double>("number"); }
  [[nodiscard]] const std::string& as_string() const {
    return get<std::string>("string");
  }
  [[nodiscard]] const Array& as_array() const { return get<Array>("array"); }
  [[nodiscard]] const Object& as_object() const {
    return get<Object>("object");
  }
  [[nodiscard]] Array& as_array() { return get<Array>("array"); }
  [[nodiscard]] Object& as_object() { return get<Object>("object"); }

  /// Object member access; throws JsonError when absent.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Member access with a default when the key is absent.
  [[nodiscard]] double number_or(const std::string& key, double dflt) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& dflt) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool dflt) const;

  /// Serialize; indent < 0 means compact single-line output.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (trailing garbage is an error).
  static Value parse(const std::string& text);

 private:
  template <typename T>
  [[nodiscard]] const T& get(const char* what) const {
    if (const T* p = std::get_if<T>(&data_)) return *p;
    throw JsonError(std::string("json: value is not a ") + what);
  }
  template <typename T>
  [[nodiscard]] T& get(const char* what) {
    if (T* p = std::get_if<T>(&data_)) return *p;
    throw JsonError(std::string("json: value is not a ") + what);
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

}  // namespace rperf::json
