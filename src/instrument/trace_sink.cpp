#include "instrument/trace_sink.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>

namespace rperf::cali {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceSink& TraceSink::instance() {
  static TraceSink sink;
  return sink;
}

double TraceSink::now_sec() const {
  const std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(steady_ns() - epoch) * 1e-9;
}

TraceSink::ThreadBuffer& TraceSink::local_buffer() {
  // One TLS read per call; the pointed-to buffer is owned by the registry
  // (and survives fork by address-space copy).
  thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto buf = std::make_unique<ThreadBuffer>();
    buf->tid = static_cast<std::uint32_t>(buffers_.size());
    buf->records.reserve(1024);
    t_buffer = buf.get();
    buffers_.push_back(std::move(buf));
  }
  return *t_buffer;
}

void TraceSink::append(ThreadBuffer& buf, const TraceRecord& rec) {
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.records.size() >= kMaxRecordsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.records.push_back(rec);
  appended_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t TraceSink::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  name_ids_.emplace(name, id);
  return id;
}

std::uint32_t TraceSink::thread_id() { return local_buffer().tid; }

std::uint32_t TraceSink::current_open_name() {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (!buf.open.empty()) return buf.open.back().first;
  return intern_untracked();
}

std::uint32_t TraceSink::intern_untracked() {
  static const std::uint32_t id = instance().intern("(untracked)");
  return id;
}

void TraceSink::begin(std::uint32_t name) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.open.emplace_back(name, now_sec());
}

void TraceSink::end() {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  const double t = now_sec();
  TraceRecord rec;
  {
    std::lock_guard<std::mutex> lock(buf.mutex);
    if (buf.open.empty()) return;  // unmatched end: Channel validates, we don't
    rec.name = buf.open.back().first;
    rec.t0 = buf.open.back().second;
    buf.open.pop_back();
    rec.depth = static_cast<std::int32_t>(buf.open.size());
  }
  rec.kind = TraceRecord::Kind::Span;
  rec.tid = buf.tid;
  rec.t1 = t;
  append(buf, rec);
}

void TraceSink::thread_span(std::uint32_t name, double t0, double t1) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  TraceRecord rec;
  rec.kind = TraceRecord::Kind::ThreadSpan;
  rec.name = name;
  rec.tid = buf.tid;
  rec.t0 = t0;
  rec.t1 = t1;
  append(buf, rec);
}

void TraceSink::counter(std::uint32_t name, double value) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  TraceRecord rec;
  rec.kind = TraceRecord::Kind::Counter;
  rec.name = name;
  rec.tid = buf.tid;
  rec.t0 = now_sec();
  rec.t1 = rec.t0;
  rec.value = value;
  append(buf, rec);
}

void TraceSink::note_parallel_instance(std::uint32_t name, double max_sec,
                                       double mean_sec, int threads) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  RegionThreadStats& s = stats_[name];
  ++s.instances;
  s.sum_max_sec += max_sec;
  s.sum_mean_sec += mean_sec;
  s.max_threads = std::max(s.max_threads, threads);
}

RegionThreadStats TraceSink::instance_stats(std::uint32_t name) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = stats_.find(name);
  return it == stats_.end() ? RegionThreadStats{} : it->second;
}

void TraceSink::calibrate() {
  // Price one record append (timestamp + locked push) so overhead
  // accounting can charge per record without timing every append twice.
  constexpr int kIters = 4096;
  ThreadBuffer scratch;
  scratch.records.reserve(kIters);
  const std::uint64_t start = steady_ns();
  for (int i = 0; i < kIters; ++i) {
    TraceRecord rec;
    rec.t0 = now_sec();
    rec.t1 = rec.t0;
    std::lock_guard<std::mutex> lock(scratch.mutex);
    scratch.records.push_back(rec);
  }
  per_record_cost_sec_ =
      static_cast<double>(steady_ns() - start) * 1e-9 / kIters;
}

void TraceSink::enable() {
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (auto& buf : buffers_) {
      std::lock_guard<std::mutex> bl(buf->mutex);
      buf->records.clear();
      buf->open.clear();
      buf->dropped = 0;
    }
    stats_.clear();
  }
  appended_.store(0, std::memory_order_relaxed);
  flush_cost_sec_ = 0.0;
  parent_offset_sec_ = 0.0;
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
  calibrate();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceSink::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceSink::rezero_after_fork(const std::string& process_name) {
  // Runs in a single-threaded, freshly forked child. The inherited buffers
  // (including other threads' — their memory was copied) hold the parent's
  // records; drop them so the parent's work is not double-reported, and
  // remember how far into the parent's timeline this process was born.
  const double offset = parent_offset_sec_ + now_sec();
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& buf : buffers_) {
    buf->records.clear();
    buf->open.clear();
    buf->dropped = 0;
  }
  stats_.clear();
  appended_.store(0, std::memory_order_relaxed);
  flush_cost_sec_ = 0.0;
  parent_offset_sec_ = offset;
  process_name_ = process_name;
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

double TraceSink::overhead_sec() const {
  return per_record_cost_sec_ *
             static_cast<double>(appended_.load(std::memory_order_relaxed)) +
         flush_cost_sec_;
}

TraceData TraceSink::flush() {
  const std::uint64_t start = steady_ns();
  TraceData out;
  out.pid = static_cast<int>(::getpid());
  out.clock_offset_sec = parent_offset_sec_;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    out.process_name = process_name_;
    out.names = names_;
    for (auto& buf : buffers_) {
      std::lock_guard<std::mutex> bl(buf->mutex);
      out.records.insert(out.records.end(), buf->records.begin(),
                         buf->records.end());
      out.dropped += buf->dropped;
      buf->records.clear();
      buf->dropped = 0;
    }
    for (const auto& [id, s] : stats_) {
      if (id < names_.size()) out.region_stats[names_[id]] = s;
    }
  }
  std::sort(out.records.begin(), out.records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.t0 < b.t0;
            });
  flush_cost_sec_ += static_cast<double>(steady_ns() - start) * 1e-9;
  out.overhead_sec = overhead_sec();
  return out;
}

// ---------------------------------------------------------------- TraceData

json::Value TraceData::to_value() const {
  json::Object o;
  o["pid"] = pid;
  o["process"] = process_name;
  o["offset_sec"] = clock_offset_sec;
  o["dropped"] = static_cast<std::int64_t>(dropped);
  o["overhead_sec"] = overhead_sec;
  json::Array names_arr;
  for (const auto& n : names) names_arr.push_back(json::Value(n));
  o["names"] = std::move(names_arr);
  json::Array recs;
  for (const TraceRecord& r : records) {
    json::Array row;
    row.push_back(json::Value(static_cast<int>(r.kind)));
    row.push_back(json::Value(static_cast<std::int64_t>(r.name)));
    row.push_back(json::Value(static_cast<std::int64_t>(r.tid)));
    row.push_back(json::Value(static_cast<std::int64_t>(r.depth)));
    row.push_back(json::Value(r.t0));
    row.push_back(json::Value(r.t1));
    row.push_back(json::Value(r.value));
    recs.push_back(json::Value(std::move(row)));
  }
  o["records"] = std::move(recs);
  json::Object stats;
  for (const auto& [name, s] : region_stats) {
    json::Array row;
    row.push_back(json::Value(static_cast<std::int64_t>(s.instances)));
    row.push_back(json::Value(s.sum_max_sec));
    row.push_back(json::Value(s.sum_mean_sec));
    row.push_back(json::Value(s.max_threads));
    stats[name] = json::Value(std::move(row));
  }
  o["stats"] = std::move(stats);
  return json::Value(std::move(o));
}

TraceData TraceData::from_value(const json::Value& v) {
  TraceData out;
  out.pid = static_cast<int>(v.number_or("pid", 0.0));
  out.process_name = v.string_or("process", "worker");
  out.clock_offset_sec = v.number_or("offset_sec", 0.0);
  out.dropped = static_cast<std::uint64_t>(v.number_or("dropped", 0.0));
  out.overhead_sec = v.number_or("overhead_sec", 0.0);
  for (const json::Value& n : v.at("names").as_array()) {
    out.names.push_back(n.as_string());
  }
  for (const json::Value& row : v.at("records").as_array()) {
    const json::Array& a = row.as_array();
    if (a.size() < 7) continue;
    TraceRecord r;
    r.kind = static_cast<TraceRecord::Kind>(
        static_cast<int>(a[0].as_number()));
    r.name = static_cast<std::uint32_t>(a[1].as_number());
    r.tid = static_cast<std::uint32_t>(a[2].as_number());
    r.depth = static_cast<std::int32_t>(a[3].as_number());
    r.t0 = a[4].as_number();
    r.t1 = a[5].as_number();
    r.value = a[6].as_number();
    out.records.push_back(r);
  }
  if (v.contains("stats")) {
    for (const auto& [name, row] : v.at("stats").as_object()) {
      const json::Array& a = row.as_array();
      if (a.size() < 4) continue;
      RegionThreadStats s;
      s.instances = static_cast<std::uint64_t>(a[0].as_number());
      s.sum_max_sec = a[1].as_number();
      s.sum_mean_sec = a[2].as_number();
      s.max_threads = static_cast<int>(a[3].as_number());
      out.region_stats[name] = s;
    }
  }
  return out;
}

}  // namespace rperf::cali
