#include "instrument/config.hpp"

#include <cctype>

namespace rperf::cali {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

void ConfigManager::add(const std::string& config) {
  // Split on commas that are not inside parentheses.
  std::vector<std::string> tokens;
  std::string current;
  int depth = 0;
  for (char c : config) {
    if (c == '(') ++depth;
    if (c == ')') {
      --depth;
      if (depth < 0) throw ConfigError("unbalanced ')' in config");
    }
    if (c == ',' && depth == 0) {
      tokens.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (depth != 0) throw ConfigError("unbalanced '(' in config");
  tokens.push_back(current);

  for (std::string& raw : tokens) {
    std::string token = trim(raw);
    if (token.empty()) continue;

    const std::size_t eq = token.find('=');
    const std::size_t paren = token.find('(');

    if (paren != std::string::npos && (eq == std::string::npos || paren < eq)) {
      // spec(name=value, ...)
      if (token.back() != ')') throw ConfigError("expected ')': " + token);
      ConfigSpec spec;
      spec.name = trim(token.substr(0, paren));
      if (spec.name.empty()) throw ConfigError("empty spec name: " + token);
      const std::string inner =
          token.substr(paren + 1, token.size() - paren - 2);
      std::string opt;
      for (std::size_t i = 0; i <= inner.size(); ++i) {
        if (i == inner.size() || inner[i] == ',') {
          std::string o = trim(opt);
          opt.clear();
          if (o.empty()) continue;
          const std::size_t oeq = o.find('=');
          if (oeq == std::string::npos) {
            spec.options[o] = "true";
          } else {
            spec.options[trim(o.substr(0, oeq))] = trim(o.substr(oeq + 1));
          }
        } else {
          opt += inner[i];
        }
      }
      specs_.push_back(std::move(spec));
    } else if (eq != std::string::npos) {
      // key=value attaches to the most recent spec
      if (specs_.empty()) {
        throw ConfigError("option '" + token + "' with no preceding spec");
      }
      specs_.back().options[trim(token.substr(0, eq))] =
          trim(token.substr(eq + 1));
    } else {
      specs_.push_back(ConfigSpec{token, {}});
    }
  }
}

bool ConfigManager::has(const std::string& name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return true;
  }
  return false;
}

const ConfigSpec& ConfigManager::get(const std::string& name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return s;
  }
  throw ConfigError("no such config spec: " + name);
}

}  // namespace rperf::cali
