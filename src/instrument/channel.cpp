#include "instrument/channel.hpp"

#include <sstream>

#include "instrument/trace_sink.hpp"

namespace rperf::cali {

RegionNode& RegionNode::child(const std::string& child_name) {
  for (auto& c : children) {
    if (c->name == child_name) return *c;
  }
  auto node = std::make_unique<RegionNode>();
  node->name = child_name;
  node->parent = this;
  children.push_back(std::move(node));
  return *children.back();
}

const RegionNode* RegionNode::find(const std::string& child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::string RegionNode::path() const {
  if (parent == nullptr) return "";
  std::string prefix = parent->path();
  return prefix.empty() ? name : prefix + "/" + name;
}

Channel::Channel() : root_(std::make_unique<RegionNode>()) {
  stack_.push_back(root_.get());
  times_.push_back(Clock::now());
}

void Channel::begin(const std::string& region) {
  if (region.empty()) throw AnnotationError("begin: empty region name");
  RegionNode& node = stack_.back()->child(region);
  stack_.push_back(&node);
  const auto now = Clock::now();
  times_.push_back(now);
  if (TraceSink& sink = TraceSink::instance(); sink.enabled()) {
    sink.begin(sink.intern(region));
  }
  notify_hooks(region, /*is_begin=*/true, now);
}

void Channel::end(const std::string& region) {
  if (stack_.size() <= 1) {
    throw AnnotationError("end('" + region + "') with no open region");
  }
  RegionNode* node = stack_.back();
  if (node->name != region) {
    throw AnnotationError("mismatched end: open region is '" + node->name +
                          "', got '" + region + "'");
  }
  const auto now = Clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - times_.back()).count();
  node->inclusive_time_sec += elapsed;
  node->visit_count += 1;
  stack_.pop_back();
  times_.pop_back();
  if (TraceSink& sink = TraceSink::instance(); sink.enabled()) {
    sink.end();
  }
  notify_hooks(region, /*is_begin=*/false, now);
}

void Channel::notify_hooks(const std::string& region, bool is_begin,
                           Clock::time_point now) const {
  if (hooks_.empty()) return;
  const double elapsed =
      std::chrono::duration<double>(now - epoch_).count();
  for (const HookEntry& h : hooks_) h.fn(region, is_begin, elapsed);
}

int Channel::add_event_hook(EventHook hook) {
  if (!hook) throw AnnotationError("add_event_hook: null hook");
  const int id = next_hook_id_++;
  hooks_.push_back(HookEntry{id, std::move(hook)});
  return id;
}

void Channel::remove_event_hook(int id) {
  for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
    if (it->id == id) {
      hooks_.erase(it);
      return;
    }
  }
}

void Channel::set_event_hook(EventHook hook) {
  hooks_.clear();
  if (hook) add_event_hook(std::move(hook));
}

void Channel::attribute_metric(const std::string& name, double value) {
  if (stack_.size() <= 1) {
    throw AnnotationError("attribute_metric('" + name +
                          "') with no open region");
  }
  stack_.back()->metrics[name] += value;
}

void Channel::attribute_metric_at(const std::string& region,
                                  const std::string& name, double value) {
  if (region.empty()) {
    throw AnnotationError("attribute_metric_at: empty region name");
  }
  root_->child(region).metrics[name] += value;
}

void Channel::set_metadata(const std::string& key, const std::string& value) {
  metadata_[key] = value;
}

void Channel::set_metadata(const std::string& key, double value) {
  std::ostringstream os;
  os << value;
  metadata_[key] = os.str();
}

double Channel::total_time_sec() const {
  double total = 0.0;
  for (const auto& c : root_->children) total += c->inclusive_time_sec;
  return total;
}

void Channel::clear() {
  if (stack_.size() > 1) {
    throw AnnotationError("clear() while regions are open");
  }
  root_ = std::make_unique<RegionNode>();
  stack_.clear();
  times_.clear();
  stack_.push_back(root_.get());
  times_.push_back(Clock::now());
  metadata_.clear();
}

namespace {

void merge_node(RegionNode& dst, const RegionNode& src) {
  dst.inclusive_time_sec += src.inclusive_time_sec;
  dst.visit_count += src.visit_count;
  for (const auto& [name, value] : src.metrics) dst.metrics[name] += value;
  for (const auto& child : src.children) {
    merge_node(dst.child(child->name), *child);
  }
}

}  // namespace

void Channel::merge(const Channel& other) {
  if (open_depth() > 0 || other.open_depth() > 0) {
    throw AnnotationError("merge() while regions are open");
  }
  merge_node(*root_, other.root());
  for (const auto& [key, value] : other.metadata()) metadata_[key] = value;
}

Channel& default_channel() {
  static Channel instance;
  return instance;
}

}  // namespace rperf::cali
