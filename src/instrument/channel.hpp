// Region-annotation channel — the Caliper substitute.
//
// A `Channel` records a tree of nested annotated regions. Entering the same
// region path twice accumulates (time and visit count), so repeated kernel
// executions fold into one node, as Caliper's aggregation service does.
// Arbitrary named metrics (e.g. the suite's analytic metrics: bytes read,
// bytes written, FLOPs) can be attributed to the currently open region.
// Run-level metadata (the Adiak substitute) records variant, tuning,
// machine, problem size, etc.
//
// Typical use, mirroring the paper's integration:
//
//   Channel ch;
//   ch.set_metadata("variant", "RAJA_OpenMP");
//   {
//     ScopedRegion r(ch, "Stream_TRIAD");
//     run_kernel();
//     ch.attribute_metric("flops", 2.0 * n);
//   }
//   write_profile(ch, "triad.cali.json");
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace rperf::cali {

/// One node of the region tree.
struct RegionNode {
  std::string name;
  RegionNode* parent = nullptr;
  std::vector<std::unique_ptr<RegionNode>> children;

  double inclusive_time_sec = 0.0;  ///< summed wall time across visits
  std::uint64_t visit_count = 0;    ///< number of begin/end pairs
  std::map<std::string, double> metrics;  ///< attributed metrics (summed)

  /// Find or create a child with the given name.
  RegionNode& child(const std::string& child_name);
  /// Find a child; nullptr when absent.
  [[nodiscard]] const RegionNode* find(const std::string& child_name) const;
  /// Slash-joined path from the root (root itself is "").
  [[nodiscard]] std::string path() const;
};

class AnnotationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Channel {
 public:
  Channel();

  /// Open a nested region. Regions must be strictly nested.
  void begin(const std::string& region);
  /// Close the innermost region; `region` must match the open one.
  void end(const std::string& region);

  /// Add `value` to metric `name` on the innermost open region.
  void attribute_metric(const std::string& name, double value);

  /// Add `value` to metric `name` on top-level region `region`, creating it
  /// if needed, without opening it (visit_count is untouched). Lets callers
  /// attribute costs measured after a region closed — e.g. the checksum
  /// pass that validates a kernel region's output.
  void attribute_metric_at(const std::string& region, const std::string& name,
                           double value);

  /// Record run-level metadata (Adiak substitute).
  void set_metadata(const std::string& key, const std::string& value);
  void set_metadata(const std::string& key, double value);

  [[nodiscard]] const RegionNode& root() const { return *root_; }
  /// Mutable root, for deserializers that rebuild a recorded tree
  /// (e.g. channel_from_profile). Not for live annotation — use begin/end.
  [[nodiscard]] RegionNode& root_rw() { return *root_; }
  [[nodiscard]] const std::map<std::string, std::string>& metadata() const {
    return metadata_;
  }
  [[nodiscard]] int open_depth() const {
    return static_cast<int>(stack_.size()) - 1;
  }

  /// Total time attributed to top-level regions.
  [[nodiscard]] double total_time_sec() const;

  /// Drop all recorded regions and metadata.
  void clear();

  /// Fold another channel's recorded regions into this one: matching
  /// region paths sum their time, visit counts, and metrics; new paths are
  /// adopted; `other`'s metadata overwrites same-keyed entries here. Both
  /// channels must have no open regions. Used by the executor to commit a
  /// per-cell scratch channel into the per-variant profile only after the
  /// cell passes.
  void merge(const Channel& other);

  /// Observer invoked on every begin (is_begin=true) and end event with
  /// the region name and seconds since channel creation. Used by the
  /// event-trace service. Multiple observers may be registered; they are
  /// invoked in registration order, so independent traces can watch one
  /// channel without clobbering each other's interval pairing.
  using EventHook =
      std::function<void(const std::string& region, bool is_begin,
                         double elapsed_sec)>;
  /// Register an observer; returns a handle for remove_event_hook.
  /// Throws AnnotationError for a null hook.
  int add_event_hook(EventHook hook);
  /// Remove a previously registered observer; unknown handles are ignored.
  void remove_event_hook(int id);
  /// Legacy single-observer interface: replaces ALL registered hooks with
  /// `hook` (or removes all when nullptr). Prefer add/remove_event_hook.
  void set_event_hook(EventHook hook);
  [[nodiscard]] std::size_t event_hook_count() const { return hooks_.size(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct HookEntry {
    int id = 0;
    EventHook fn;
  };

  void notify_hooks(const std::string& region, bool is_begin,
                    Clock::time_point now) const;

  std::unique_ptr<RegionNode> root_;
  std::vector<RegionNode*> stack_;       // innermost last; stack_[0] == root
  std::vector<Clock::time_point> times_; // begin timestamps, parallel to stack_
  std::map<std::string, std::string> metadata_;
  Clock::time_point epoch_ = Clock::now();
  std::vector<HookEntry> hooks_;
  int next_hook_id_ = 1;
};

/// RAII region guard.
class ScopedRegion {
 public:
  ScopedRegion(Channel& channel, std::string name)
      : channel_(channel), name_(std::move(name)) {
    channel_.begin(name_);
  }
  ~ScopedRegion() { channel_.end(name_); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  Channel& channel_;
  std::string name_;
};

/// Process-wide default channel (mirrors Caliper's implicit instance).
Channel& default_channel();

}  // namespace rperf::cali
