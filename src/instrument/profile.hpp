// Serialized performance profiles (the ".cali file" substitute).
//
// A `Profile` is the at-rest form of one instrumented run: run metadata plus
// a tree of regions with time, visit count, and attributed metrics. Channels
// convert to profiles; profiles round-trip through JSON files; the analysis
// toolkit (thicket substitute) ingests them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "instrument/channel.hpp"
#include "instrument/json.hpp"

namespace rperf::cali {

struct ProfileNode {
  std::string name;
  double time_sec = 0.0;
  std::uint64_t visit_count = 0;
  std::map<std::string, double> metrics;
  std::vector<ProfileNode> children;
};

struct Profile {
  std::map<std::string, std::string> metadata;
  std::vector<ProfileNode> roots;

  /// Depth-first visit of every node with its slash-joined path.
  void for_each(const std::function<void(const std::string& path,
                                         const ProfileNode&)>& fn) const;

  /// Find a node by slash-joined path; nullptr when absent.
  [[nodiscard]] const ProfileNode* find(const std::string& path) const;

  /// Number of nodes in the tree.
  [[nodiscard]] std::size_t node_count() const;
};

/// Snapshot a channel's region tree into a profile.
[[nodiscard]] Profile to_profile(const Channel& channel);

/// Serialize a profile to a JSON file (throws std::runtime_error on I/O
/// failure).
void write_profile(const Profile& profile, const std::string& path);
void write_profile(const Channel& channel, const std::string& path);

/// Parse a profile previously written by write_profile.
[[nodiscard]] Profile read_profile(const std::string& path);

/// In-memory (de)serialization, used by tests and remote transports.
[[nodiscard]] std::string profile_to_json(const Profile& profile);
[[nodiscard]] Profile profile_from_json(const std::string& text);

/// json::Value forms, for embedding a profile inside a larger document
/// (the sandbox pipe protocol ships per-cell profiles this way).
[[nodiscard]] json::Value profile_to_value(const Profile& profile);
[[nodiscard]] Profile profile_from_value(const json::Value& v);

/// Rebuild a channel whose region tree and metadata mirror `profile`,
/// so a deserialized profile can be folded into a live channel with
/// Channel::merge. Inverse of to_profile up to region ordering.
[[nodiscard]] Channel channel_from_profile(const Profile& profile);

}  // namespace rperf::cali
