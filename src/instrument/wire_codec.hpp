// Binary wire codecs for the instrument layer's transportable snapshots
// (Profile, TraceData) — the rperf::wire counterpart of profile_to_value
// / TraceData::to_value, used by the pool's shm-ring transport so worker
// profiles and trace chunks merge into the supervisor without a JSON
// round-trip.
//
// Layout (all fields little-endian, strings per wire.hpp refs):
//
//   profile  := u32 nmeta { str key, bytes value }*
//               u32 nroots node*
//   node     := str name, f64 time_sec, u64 visits,
//               u32 nmetrics { str key, f64 value }*,
//               u32 nchildren node*
//
//   trace    := i64 pid, bytes process_name, f64 clock_offset_sec,
//               u32 nnames bytes*,
//               u64 nrecords { u32 name, u32 tid, u8 kind, i32 depth,
//                              f64 t0, f64 t1, f64 value }*,
//               u32 nstats { bytes region, u64 instances, f64 sum_max,
//                            f64 sum_mean, i32 max_threads }*,
//               u64 dropped, f64 overhead_sec
//
// Decoders validate every count against the bytes remaining and throw
// wire::Error on violation; callers map that to the malformed-record
// path exactly like a JSON parse failure.
#pragma once

#include "instrument/profile.hpp"
#include "instrument/trace_sink.hpp"
#include "sandbox/wire.hpp"

namespace rperf::cali {

void profile_to_wire(const Profile& profile, wire::Writer& w);
[[nodiscard]] Profile profile_from_wire(wire::Reader& r);

void trace_to_wire(const TraceData& trace, wire::Writer& w);
[[nodiscard]] TraceData trace_from_wire(wire::Reader& r);

}  // namespace rperf::cali
