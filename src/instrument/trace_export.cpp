#include "instrument/trace_export.hpp"

#include <algorithm>
#include <set>

#include "instrument/json.hpp"

namespace rperf::cali {

namespace {

/// Thread row name: tid 0 is the process's main (encountering) thread.
std::string thread_row_name(std::uint32_t tid) {
  return tid == 0 ? "main" : "thread-" + std::to_string(tid);
}

json::Object metadata_event(const char* name, int pid, int tid,
                            const std::string& value) {
  json::Object o;
  o["ph"] = "M";
  o["name"] = name;
  o["pid"] = pid;
  o["tid"] = tid;
  json::Object args;
  args["name"] = value;
  o["args"] = std::move(args);
  return o;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceData>& parts,
                              const std::map<std::string, std::string>& meta) {
  json::Array events;
  for (const TraceData& part : parts) {
    events.push_back(json::Value(
        metadata_event("process_name", part.pid, 0, part.process_name)));
    std::set<std::uint32_t> tids;
    for (const TraceRecord& r : part.records) tids.insert(r.tid);
    for (const std::uint32_t tid : tids) {
      events.push_back(json::Value(metadata_event(
          "thread_name", part.pid, static_cast<int>(tid),
          thread_row_name(tid))));
    }
    for (const TraceRecord& r : part.records) {
      const std::string& name =
          r.name < part.names.size() ? part.names[r.name] : "?";
      const double ts_us = (r.t0 + part.clock_offset_sec) * 1e6;
      json::Object o;
      o["pid"] = part.pid;
      o["tid"] = static_cast<int>(r.tid);
      o["name"] = name;
      o["ts"] = ts_us;
      switch (r.kind) {
        case TraceRecord::Kind::Span:
        case TraceRecord::Kind::ThreadSpan:
          o["ph"] = "X";
          o["dur"] = (r.t1 - r.t0) * 1e6;
          o["cat"] = r.kind == TraceRecord::Kind::Span ? "region" : "thread";
          break;
        case TraceRecord::Kind::Counter: {
          o["ph"] = "C";
          json::Object args;
          args["value"] = r.value;
          o["args"] = std::move(args);
          break;
        }
      }
      events.push_back(json::Value(std::move(o)));
    }
  }

  json::Object top;
  top["traceEvents"] = json::Value(std::move(events));
  top["displayTimeUnit"] = "ms";
  json::Object other;
  for (const auto& [k, v] : meta) other[k] = v;
  // Region thread-stats travel in otherData so a trace file alone can
  // answer "how imbalanced was this kernel" without the profiles.
  json::Object imbalance;
  for (const TraceData& part : parts) {
    for (const auto& [region, s] : part.region_stats) {
      json::Object row;
      row["instances"] = static_cast<std::int64_t>(s.instances);
      row["imbalance"] = s.imbalance();
      row["max_threads"] = s.max_threads;
      imbalance[region] = std::move(row);
    }
  }
  if (!imbalance.empty()) other["region_thread_stats"] = std::move(imbalance);
  top["otherData"] = std::move(other);
  return json::Value(std::move(top)).dump();
}

std::size_t ChromeTrace::thread_count() const {
  std::set<std::pair<int, int>> rows;
  for (const ChromeSpan& s : spans) rows.emplace(s.pid, s.tid);
  return rows.size();
}

ChromeTrace chrome_trace_parse(const std::string& text) {
  const json::Value v = json::Value::parse(text);
  ChromeTrace out;
  for (const json::Value& e : v.at("traceEvents").as_array()) {
    const std::string ph = e.string_or("ph", "");
    if (ph == "X") {
      ChromeSpan s;
      s.pid = static_cast<int>(e.number_or("pid", 0.0));
      s.tid = static_cast<int>(e.number_or("tid", 0.0));
      s.name = e.string_or("name", "?");
      s.category = e.string_or("cat", "");
      s.ts_us = e.number_or("ts", 0.0);
      s.dur_us = e.number_or("dur", 0.0);
      out.spans.push_back(std::move(s));
    } else if (ph == "C") {
      ++out.counter_events;
    } else if (ph == "M" && e.string_or("name", "") == "process_name") {
      out.process_names[static_cast<int>(e.number_or("pid", 0.0))] =
          e.contains("args") ? e.at("args").string_or("name", "?") : "?";
    }
  }
  if (v.contains("otherData")) {
    for (const auto& [k, val] : v.at("otherData").as_object()) {
      if (val.is_string()) {
        out.meta[k] = val.as_string();
      } else if (val.is_number()) {
        out.meta[k] = json::Value(val.as_number()).dump();
      }
    }
  }
  return out;
}

namespace {

/// Per-span exclusive time via an interval-nesting stack walk: spans on
/// one (pid, tid) row, sorted by start (ties: longer first), nest by
/// containment; a child's duration is subtracted from its parent's
/// exclusive share.
struct WalkedSpan {
  const ChromeSpan* span = nullptr;
  std::string path;          ///< ";"-joined frames, rooted at process name
  double exclusive_us = 0.0;
};

std::vector<WalkedSpan> walk_spans(const ChromeTrace& trace) {
  std::map<std::pair<int, int>, std::vector<const ChromeSpan*>> rows;
  for (const ChromeSpan& s : trace.spans) rows[{s.pid, s.tid}].push_back(&s);

  std::vector<WalkedSpan> out;
  out.reserve(trace.spans.size());
  for (auto& [row, spans] : rows) {
    std::sort(spans.begin(), spans.end(),
              [](const ChromeSpan* a, const ChromeSpan* b) {
                if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                return a->dur_us > b->dur_us;
              });
    const auto pit = trace.process_names.find(row.first);
    const std::string root = pit != trace.process_names.end()
                                 ? pit->second
                                 : "pid " + std::to_string(row.first);
    // Open-span stack: indices into `out`. A microsecond of slack absorbs
    // floating-point jitter between a child's end and its parent's.
    constexpr double kSlackUs = 1.0;
    std::vector<std::size_t> stack;
    for (const ChromeSpan* s : spans) {
      while (!stack.empty()) {
        const ChromeSpan* top = out[stack.back()].span;
        if (top->ts_us + top->dur_us <= s->ts_us + kSlackUs) {
          stack.pop_back();
        } else {
          break;
        }
      }
      WalkedSpan w;
      w.span = s;
      w.exclusive_us = s->dur_us;
      if (stack.empty()) {
        w.path = root + ";" + s->name;
      } else {
        WalkedSpan& parent = out[stack.back()];
        parent.exclusive_us -= s->dur_us;
        w.path = parent.path + ";" + s->name;
      }
      out.push_back(std::move(w));
      stack.push_back(out.size() - 1);
    }
  }
  return out;
}

}  // namespace

std::vector<FoldedLine> fold_stacks(const ChromeTrace& trace) {
  std::map<std::string, double> folded;
  for (const WalkedSpan& w : walk_spans(trace)) {
    folded[w.path] += std::max(0.0, w.exclusive_us);
  }
  std::vector<FoldedLine> out;
  out.reserve(folded.size());
  for (const auto& [stack, usec] : folded) {
    out.push_back(FoldedLine{stack, usec});
  }
  return out;
}

std::vector<RegionTime> top_exclusive(const ChromeTrace& trace,
                                      std::size_t n) {
  std::map<std::string, RegionTime> by_name;
  for (const WalkedSpan& w : walk_spans(trace)) {
    RegionTime& r = by_name[w.span->name];
    r.name = w.span->name;
    r.exclusive_us += std::max(0.0, w.exclusive_us);
    r.inclusive_us += w.span->dur_us;
    ++r.count;
  }
  std::vector<RegionTime> out;
  out.reserve(by_name.size());
  for (auto& [name, r] : by_name) out.push_back(std::move(r));
  std::sort(out.begin(), out.end(), [](const RegionTime& a,
                                       const RegionTime& b) {
    return a.exclusive_us > b.exclusive_us;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace rperf::cali
