#include "instrument/wire_codec.hpp"

namespace rperf::cali {

namespace {

void node_to_wire(const ProfileNode& n, wire::Writer& w) {
  w.put_str(n.name);
  w.put_f64(n.time_sec);
  w.put_u64(n.visit_count);
  w.put_u32(static_cast<std::uint32_t>(n.metrics.size()));
  for (const auto& [key, value] : n.metrics) {
    w.put_str(key);
    w.put_f64(value);
  }
  w.put_u32(static_cast<std::uint32_t>(n.children.size()));
  for (const auto& child : n.children) node_to_wire(child, w);
}

ProfileNode node_from_wire(wire::Reader& r, int depth) {
  if (depth > 256) throw wire::Error("wire: profile nesting too deep");
  ProfileNode n;
  n.name = r.get_str();
  n.time_sec = r.get_f64();
  n.visit_count = r.get_u64();
  const std::uint32_t nmetrics = r.get_u32();
  r.check_count(nmetrics, 12);
  for (std::uint32_t i = 0; i < nmetrics; ++i) {
    const std::string key = r.get_str();
    n.metrics[key] = r.get_f64();
  }
  const std::uint32_t nchildren = r.get_u32();
  r.check_count(nchildren, 24);
  for (std::uint32_t i = 0; i < nchildren; ++i) {
    n.children.push_back(node_from_wire(r, depth + 1));
  }
  return n;
}

}  // namespace

void profile_to_wire(const Profile& profile, wire::Writer& w) {
  w.put_u32(static_cast<std::uint32_t>(profile.metadata.size()));
  for (const auto& [key, value] : profile.metadata) {
    w.put_str(key);
    w.put_bytes(value);
  }
  w.put_u32(static_cast<std::uint32_t>(profile.roots.size()));
  for (const auto& root : profile.roots) node_to_wire(root, w);
}

Profile profile_from_wire(wire::Reader& r) {
  Profile p;
  const std::uint32_t nmeta = r.get_u32();
  r.check_count(nmeta, 8);
  for (std::uint32_t i = 0; i < nmeta; ++i) {
    const std::string key = r.get_str();
    p.metadata[key] = r.get_bytes();
  }
  const std::uint32_t nroots = r.get_u32();
  r.check_count(nroots, 24);
  for (std::uint32_t i = 0; i < nroots; ++i) {
    p.roots.push_back(node_from_wire(r, 0));
  }
  return p;
}

void trace_to_wire(const TraceData& trace, wire::Writer& w) {
  w.put_i64(trace.pid);
  w.put_bytes(trace.process_name);
  w.put_f64(trace.clock_offset_sec);
  w.put_u32(static_cast<std::uint32_t>(trace.names.size()));
  for (const auto& name : trace.names) w.put_bytes(name);
  w.put_u64(trace.records.size());
  for (const TraceRecord& rec : trace.records) {
    w.put_u32(rec.name);
    w.put_u32(rec.tid);
    w.put_u8(static_cast<std::uint8_t>(rec.kind));
    w.put_i64(rec.depth);
    w.put_f64(rec.t0);
    w.put_f64(rec.t1);
    w.put_f64(rec.value);
  }
  w.put_u32(static_cast<std::uint32_t>(trace.region_stats.size()));
  for (const auto& [region, st] : trace.region_stats) {
    w.put_bytes(region);
    w.put_u64(st.instances);
    w.put_f64(st.sum_max_sec);
    w.put_f64(st.sum_mean_sec);
    w.put_i64(st.max_threads);
  }
  w.put_u64(trace.dropped);
  w.put_f64(trace.overhead_sec);
}

TraceData trace_from_wire(wire::Reader& r) {
  TraceData t;
  t.pid = static_cast<int>(r.get_i64());
  t.process_name = r.get_bytes();
  t.clock_offset_sec = r.get_f64();
  const std::uint32_t nnames = r.get_u32();
  r.check_count(nnames, 4);
  t.names.reserve(nnames);
  for (std::uint32_t i = 0; i < nnames; ++i) {
    t.names.push_back(r.get_bytes());
  }
  const std::uint64_t nrecords = r.get_u64();
  r.check_count(nrecords, 41);
  t.records.reserve(nrecords);
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    TraceRecord rec;
    rec.name = r.get_u32();
    rec.tid = r.get_u32();
    rec.kind = static_cast<TraceRecord::Kind>(r.get_u8());
    rec.depth = static_cast<std::int32_t>(r.get_i64());
    rec.t0 = r.get_f64();
    rec.t1 = r.get_f64();
    rec.value = r.get_f64();
    t.records.push_back(rec);
  }
  const std::uint32_t nstats = r.get_u32();
  r.check_count(nstats, 32);
  for (std::uint32_t i = 0; i < nstats; ++i) {
    const std::string region = r.get_bytes();
    RegionThreadStats st;
    st.instances = r.get_u64();
    st.sum_max_sec = r.get_f64();
    st.sum_mean_sec = r.get_f64();
    st.max_threads = static_cast<int>(r.get_i64());
    t.region_stats[region] = st;
  }
  t.dropped = r.get_u64();
  t.overhead_sec = r.get_f64();
  return t;
}

}  // namespace rperf::cali
