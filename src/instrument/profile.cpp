#include "instrument/profile.hpp"

#include <fstream>
#include <sstream>

#include "instrument/json.hpp"

namespace rperf::cali {

namespace {

void visit(const std::string& prefix, const ProfileNode& node,
           const std::function<void(const std::string&, const ProfileNode&)>&
               fn) {
  const std::string path =
      prefix.empty() ? node.name : prefix + "/" + node.name;
  fn(path, node);
  for (const ProfileNode& c : node.children) visit(path, c, fn);
}

ProfileNode convert(const RegionNode& node) {
  ProfileNode out;
  out.name = node.name;
  out.time_sec = node.inclusive_time_sec;
  out.visit_count = node.visit_count;
  out.metrics = node.metrics;
  out.children.reserve(node.children.size());
  for (const auto& c : node.children) out.children.push_back(convert(*c));
  return out;
}

json::Value node_to_json(const ProfileNode& node) {
  json::Object obj;
  obj.emplace("name", node.name);
  obj.emplace("time", node.time_sec);
  obj.emplace("count", static_cast<double>(node.visit_count));
  if (!node.metrics.empty()) {
    json::Object metrics;
    for (const auto& [k, v] : node.metrics) metrics.emplace(k, v);
    obj.emplace("metrics", std::move(metrics));
  }
  if (!node.children.empty()) {
    json::Array children;
    for (const ProfileNode& c : node.children) {
      children.push_back(node_to_json(c));
    }
    obj.emplace("children", std::move(children));
  }
  return json::Value(std::move(obj));
}

ProfileNode node_from_json(const json::Value& v) {
  ProfileNode node;
  node.name = v.at("name").as_string();
  node.time_sec = v.number_or("time", 0.0);
  node.visit_count = static_cast<std::uint64_t>(v.number_or("count", 0.0));
  if (v.contains("metrics")) {
    for (const auto& [k, m] : v.at("metrics").as_object()) {
      node.metrics[k] = m.as_number();
    }
  }
  if (v.contains("children")) {
    for (const json::Value& c : v.at("children").as_array()) {
      node.children.push_back(node_from_json(c));
    }
  }
  return node;
}

}  // namespace

void Profile::for_each(
    const std::function<void(const std::string&, const ProfileNode&)>& fn)
    const {
  for (const ProfileNode& r : roots) visit("", r, fn);
}

const ProfileNode* Profile::find(const std::string& path) const {
  const ProfileNode* result = nullptr;
  for_each([&](const std::string& p, const ProfileNode& n) {
    if (p == path) result = &n;
  });
  return result;
}

std::size_t Profile::node_count() const {
  std::size_t count = 0;
  for_each([&](const std::string&, const ProfileNode&) { ++count; });
  return count;
}

Profile to_profile(const Channel& channel) {
  Profile profile;
  profile.metadata = channel.metadata();
  for (const auto& c : channel.root().children) {
    profile.roots.push_back(convert(*c));
  }
  return profile;
}

json::Value profile_to_value(const Profile& profile) {
  json::Object top;
  json::Object meta;
  for (const auto& [k, v] : profile.metadata) meta.emplace(k, v);
  top.emplace("metadata", std::move(meta));
  json::Array roots;
  for (const ProfileNode& r : profile.roots) roots.push_back(node_to_json(r));
  top.emplace("regions", std::move(roots));
  top.emplace("format", "rperf-cali-1");
  return json::Value(std::move(top));
}

Profile profile_from_value(const json::Value& v) {
  Profile profile;
  if (v.contains("metadata")) {
    for (const auto& [k, m] : v.at("metadata").as_object()) {
      profile.metadata[k] = m.as_string();
    }
  }
  if (v.contains("regions")) {
    for (const json::Value& r : v.at("regions").as_array()) {
      profile.roots.push_back(node_from_json(r));
    }
  }
  return profile;
}

std::string profile_to_json(const Profile& profile) {
  return profile_to_value(profile).dump(2);
}

Profile profile_from_json(const std::string& text) {
  return profile_from_value(json::Value::parse(text));
}

namespace {

void rebuild_region(RegionNode& parent, const ProfileNode& src) {
  RegionNode& node = parent.child(src.name);
  node.inclusive_time_sec += src.time_sec;
  node.visit_count += src.visit_count;
  for (const auto& [k, v] : src.metrics) node.metrics[k] += v;
  for (const ProfileNode& c : src.children) rebuild_region(node, c);
}

}  // namespace

Channel channel_from_profile(const Profile& profile) {
  Channel channel;
  for (const auto& [k, v] : profile.metadata) channel.set_metadata(k, v);
  for (const ProfileNode& r : profile.roots) {
    rebuild_region(channel.root_rw(), r);
  }
  return channel;
}

void write_profile(const Profile& profile, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << profile_to_json(profile) << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
}

void write_profile(const Channel& channel, const std::string& path) {
  write_profile(to_profile(channel), path);
}

Profile read_profile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return profile_from_json(buffer.str());
}

}  // namespace rperf::cali
