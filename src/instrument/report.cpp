#include "instrument/report.hpp"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>

namespace rperf::cali {

namespace {

double exclusive_time(const ProfileNode& node) {
  double child_total = 0.0;
  for (const auto& c : node.children) child_total += c.time_sec;
  return std::max(0.0, node.time_sec - child_total);
}

void render(const ProfileNode& node, int depth, double total,
            const ReportOptions& opts,
            const std::vector<std::string>& metric_names,
            std::ostringstream& os) {
  const double share = total > 0.0 ? node.time_sec / total : 0.0;
  if (share * 100.0 < opts.min_percent) return;
  if (opts.max_depth >= 0 && depth > opts.max_depth) return;

  std::ostringstream name;
  name << std::string(static_cast<std::size_t>(depth) * 2, ' ')
       << node.name;
  os << std::left << std::setw(36) << name.str() << std::right
     << std::setw(12) << std::fixed << std::setprecision(6)
     << node.time_sec << std::setw(12) << exclusive_time(node)
     << std::setw(8) << std::setprecision(2) << share * 100.0 << "%";
  if (opts.show_metrics) {
    for (const auto& m : metric_names) {
      auto it = node.metrics.find(m);
      os << std::setw(14);
      if (it == node.metrics.end()) {
        os << "--";
      } else {
        os << std::scientific << std::setprecision(3) << it->second;
      }
    }
  }
  os << '\n';
  for (const auto& c : node.children) {
    render(c, depth + 1, total, opts, metric_names, os);
  }
}

}  // namespace

std::string runtime_report(const Profile& profile,
                           const ReportOptions& opts) {
  double total = 0.0;
  for (const auto& r : profile.roots) total += r.time_sec;

  std::vector<std::string> metric_names;
  if (opts.show_metrics) {
    std::set<std::string> names;
    profile.for_each([&](const std::string&, const ProfileNode& n) {
      for (const auto& [k, v] : n.metrics) names.insert(k);
    });
    metric_names.assign(names.begin(), names.end());
  }

  std::ostringstream os;
  os << std::left << std::setw(36) << "Path" << std::right << std::setw(12)
     << "Incl (s)" << std::setw(12) << "Excl (s)" << std::setw(9)
     << "Time %";
  for (const auto& m : metric_names) os << std::setw(14) << m;
  os << '\n';
  for (const auto& r : profile.roots) {
    render(r, 0, total, opts, metric_names, os);
  }
  return os.str();
}

std::string runtime_report(const Channel& channel,
                           const ReportOptions& opts) {
  return runtime_report(to_profile(channel), opts);
}

}  // namespace rperf::cali
