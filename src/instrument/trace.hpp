// Event tracing — the Caliper event-trace service substitute.
//
// While the aggregating Channel folds repeated region visits into one node,
// an EventTrace records every individual begin/end with a timestamp,
// preserving execution order for timeline analysis. Attach to a channel,
// run, then query intervals or serialize to JSON.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "instrument/channel.hpp"

namespace rperf::cali {

struct TraceEvent {
  enum class Kind { Begin, End };
  Kind kind = Kind::Begin;
  std::string region;
  double timestamp_sec = 0.0;  ///< relative to trace start
  int tid = 0;  ///< logical thread id of the recording thread (0 = main)
  int pid = 0;  ///< process id at record time (0 in legacy files)
};

/// A completed region interval reconstructed from begin/end pairs.
struct TraceInterval {
  std::string region;
  double begin_sec = 0.0;
  double end_sec = 0.0;
  int depth = 0;  ///< nesting depth at entry (0 = top level)

  [[nodiscard]] double duration_sec() const { return end_sec - begin_sec; }
};

class EventTrace {
 public:
  EventTrace() = default;

  /// Start recording events from the channel. Observers chain: several
  /// EventTraces may watch the same channel, each keeping its own interval
  /// pairing. One EventTrace, however, can be attached to only one channel
  /// at a time — attaching an already-attached trace throws
  /// AnnotationError instead of silently clobbering the earlier hook.
  /// The trace must outlive the channel's instrumented run.
  void attach(Channel& channel);
  /// Stop recording (removes only this trace's hook). Throws
  /// AnnotationError when called on a channel this trace is not attached
  /// to; detaching an unattached trace is a no-op.
  void detach(Channel& channel);
  [[nodiscard]] bool attached() const { return attached_ != nullptr; }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Pair begin/end events into intervals, in completion order.
  /// Throws AnnotationError if the event stream is not properly nested.
  [[nodiscard]] std::vector<TraceInterval> intervals() const;

  /// JSON (de)serialization.
  [[nodiscard]] std::string to_json() const;
  static EventTrace from_json(const std::string& text);
  void write(const std::string& path) const;
  static EventTrace read(const std::string& path);

 private:
  std::vector<TraceEvent> events_;
  Channel* attached_ = nullptr;
  int hook_id_ = 0;
};

}  // namespace rperf::cali
