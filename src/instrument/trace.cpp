#include "instrument/trace.hpp"

#include <unistd.h>

#include <fstream>
#include <sstream>

#include "instrument/json.hpp"
#include "instrument/trace_sink.hpp"

namespace rperf::cali {

void EventTrace::attach(Channel& channel) {
  if (attached_ != nullptr) {
    throw AnnotationError(
        "EventTrace::attach: trace is already attached to a channel; "
        "detach it first");
  }
  const int pid = static_cast<int>(::getpid());
  hook_id_ = channel.add_event_hook(
      [this, pid](const std::string& region, bool is_begin, double t) {
        events_.push_back(
            TraceEvent{is_begin ? TraceEvent::Kind::Begin
                                : TraceEvent::Kind::End,
                       region, t,
                       static_cast<int>(TraceSink::instance().thread_id()),
                       pid});
      });
  attached_ = &channel;
}

void EventTrace::detach(Channel& channel) {
  if (attached_ == nullptr) return;  // detaching an unattached trace: no-op
  if (attached_ != &channel) {
    throw AnnotationError(
        "EventTrace::detach: trace is attached to a different channel");
  }
  channel.remove_event_hook(hook_id_);
  attached_ = nullptr;
  hook_id_ = 0;
}

std::vector<TraceInterval> EventTrace::intervals() const {
  std::vector<TraceInterval> out;
  struct Open {
    std::string region;
    double begin = 0.0;
  };
  std::vector<Open> stack;
  for (const TraceEvent& e : events_) {
    if (e.kind == TraceEvent::Kind::Begin) {
      stack.push_back(Open{e.region, e.timestamp_sec});
    } else {
      if (stack.empty() || stack.back().region != e.region) {
        throw AnnotationError("trace: unbalanced end for '" + e.region +
                              "'");
      }
      TraceInterval iv;
      iv.region = e.region;
      iv.begin_sec = stack.back().begin;
      iv.end_sec = e.timestamp_sec;
      iv.depth = static_cast<int>(stack.size()) - 1;
      stack.pop_back();
      out.push_back(std::move(iv));
    }
  }
  if (!stack.empty()) {
    throw AnnotationError("trace: region '" + stack.back().region +
                          "' never ended");
  }
  return out;
}

std::string EventTrace::to_json() const {
  json::Array arr;
  for (const TraceEvent& e : events_) {
    json::Object obj;
    obj.emplace("kind", e.kind == TraceEvent::Kind::Begin ? "B" : "E");
    obj.emplace("region", e.region);
    obj.emplace("t", e.timestamp_sec);
    obj.emplace("tid", e.tid);
    obj.emplace("pid", e.pid);
    arr.push_back(json::Value(std::move(obj)));
  }
  json::Object top;
  top.emplace("format", "rperf-trace-1");
  top.emplace("events", std::move(arr));
  return json::Value(std::move(top)).dump(2);
}

EventTrace EventTrace::from_json(const std::string& text) {
  const json::Value v = json::Value::parse(text);
  EventTrace trace;
  for (const json::Value& e : v.at("events").as_array()) {
    TraceEvent event;
    event.kind = e.at("kind").as_string() == "B" ? TraceEvent::Kind::Begin
                                                 : TraceEvent::Kind::End;
    event.region = e.at("region").as_string();
    event.timestamp_sec = e.at("t").as_number();
    // Legacy rperf-trace-1 files predate tid/pid; default both to 0.
    event.tid = static_cast<int>(e.number_or("tid", 0.0));
    event.pid = static_cast<int>(e.number_or("pid", 0.0));
    trace.events_.push_back(std::move(event));
  }
  return trace;
}

void EventTrace::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << to_json() << '\n';
}

EventTrace EventTrace::read(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

}  // namespace rperf::cali
