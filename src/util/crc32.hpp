// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) shared by every
// layer that frames bytes for integrity: the sandbox pipe/shm protocol
// (sandbox/protocol.hpp) and the profile store's on-disk record and
// footer framing (src/store/). One implementation, one table set — a
// checksum written by any layer verifies in any other.
//
// Two entry points:
//   crc32_bytewise  classic byte-at-a-time table walk, kept as the
//                   independent reference the fast path is parity-tested
//                   and micro-benchmarked against (bench/crc_bench.cpp,
//                   tests/test_store_query.cpp)
//   crc32           slice-by-8: eight precomputed tables fold eight bytes
//                   per step with no inter-byte dependency chain (~5x the
//                   bytewise throughput on the pool's frame sizes)
#pragma once

#include <cstdint>
#include <cstring>

namespace rperf::util {

namespace detail {
/// Slice-by-8 CRC-32 tables: t[0] is the classic byte-at-a-time table,
/// t[k] advances a byte through k additional zero bytes, so eight bytes
/// fold per iteration with no inter-byte dependency chain.
struct Crc32Tables {
  std::uint32_t t[8][256];
};
[[nodiscard]] inline const Crc32Tables& crc32_tables() {
  static const auto tables = [] {
    Crc32Tables tb{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      tb.t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = tb.t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = tb.t[0][c & 0xFFu] ^ (c >> 8);
        tb.t[k][i] = c;
      }
    }
    return tb;
  }();
  return tables;
}
}  // namespace detail

/// Reference byte-at-a-time CRC-32 (IEEE 802.3, reflected). Kept as the
/// independent implementation the slice-by-8 path is verified and
/// micro-benchmarked against.
[[nodiscard]] inline std::uint32_t crc32_bytewise(const void* data,
                                                 std::size_t n) {
  const auto& tb = detail::crc32_tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = tb.t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// CRC-32 (IEEE 802.3, reflected) of `data`, slice-by-8: processes eight
/// bytes per step through eight precomputed tables. Same polynomial and
/// result as crc32_bytewise on every input.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n) {
  const auto& tb = detail::crc32_tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);      // little-endian hosts only (as is the repo)
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tb.t[7][lo & 0xFFu] ^ tb.t[6][(lo >> 8) & 0xFFu] ^
        tb.t[5][(lo >> 16) & 0xFFu] ^ tb.t[4][lo >> 24] ^
        tb.t[3][hi & 0xFFu] ^ tb.t[2][(hi >> 8) & 0xFFu] ^
        tb.t[1][(hi >> 16) & 0xFFu] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace rperf::util
