#include "comm/halo.hpp"

#include <stdexcept>

namespace rperf::comm {

namespace {

/// Cell range along one dimension for packing (interior boundary layer)
/// given the direction component. Interior cells are [1, ld].
void pack_range(int d, Index_type ld, Index_type& lo, Index_type& hi) {
  if (d == -1) {
    lo = 1;
    hi = 1;
  } else if (d == 1) {
    lo = ld;
    hi = ld;
  } else {
    lo = 1;
    hi = ld;
  }
}

/// Ghost-cell range for unpacking from direction d.
void unpack_range(int d, Index_type ld, Index_type& lo, Index_type& hi) {
  if (d == -1) {
    lo = 0;
    hi = 0;
  } else if (d == 1) {
    lo = ld + 1;
    hi = ld + 1;
  } else {
    lo = 1;
    hi = ld;
  }
}

}  // namespace

HaloTopology::HaloTopology(Index_type local_dim) : ld_(local_dim) {
  if (local_dim < 1) {
    throw std::invalid_argument("HaloTopology: local_dim must be >= 1");
  }
  // Enumerate the 26 directions.
  int dcount = 0;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        dirs_[static_cast<std::size_t>(dcount)] = {dx, dy, dz};
        ++dcount;
      }
    }
  }
  // Opposites.
  for (int a = 0; a < kNumDirections; ++a) {
    for (int b = 0; b < kNumDirections; ++b) {
      if (dirs_[static_cast<std::size_t>(a)][0] ==
              -dirs_[static_cast<std::size_t>(b)][0] &&
          dirs_[static_cast<std::size_t>(a)][1] ==
              -dirs_[static_cast<std::size_t>(b)][1] &&
          dirs_[static_cast<std::size_t>(a)][2] ==
              -dirs_[static_cast<std::size_t>(b)][2]) {
        opposite_[static_cast<std::size_t>(a)] = b;
      }
    }
  }
  // Periodic neighbor ranks on the 2x2x2 grid.
  auto rank_of = [](int x, int y, int z) {
    auto wrap = [](int v) { return ((v % kRanksPerDim) + kRanksPerDim) % kRanksPerDim; };
    return (wrap(x) * kRanksPerDim + wrap(y)) * kRanksPerDim + wrap(z);
  };
  for (int x = 0; x < kRanksPerDim; ++x) {
    for (int y = 0; y < kRanksPerDim; ++y) {
      for (int z = 0; z < kRanksPerDim; ++z) {
        const int r = rank_of(x, y, z);
        for (int d = 0; d < kNumDirections; ++d) {
          const auto& dir = dirs_[static_cast<std::size_t>(d)];
          neighbors_[static_cast<std::size_t>(r)]
                    [static_cast<std::size_t>(d)] =
              rank_of(x + dir[0], y + dir[1], z + dir[2]);
        }
      }
    }
  }
  // Pack / unpack lists.
  const Index_type stride_z = 1;
  const Index_type stride_y = ld_ + 2;
  const Index_type stride_x = (ld_ + 2) * (ld_ + 2);
  for (int d = 0; d < kNumDirections; ++d) {
    const auto& dir = dirs_[static_cast<std::size_t>(d)];
    Index_type pxlo, pxhi, pylo, pyhi, pzlo, pzhi;
    pack_range(dir[0], ld_, pxlo, pxhi);
    pack_range(dir[1], ld_, pylo, pyhi);
    pack_range(dir[2], ld_, pzlo, pzhi);
    auto& plist = pack_lists_[static_cast<std::size_t>(d)];
    for (Index_type x = pxlo; x <= pxhi; ++x) {
      for (Index_type y = pylo; y <= pyhi; ++y) {
        for (Index_type z = pzlo; z <= pzhi; ++z) {
          plist.push_back(x * stride_x + y * stride_y + z * stride_z);
        }
      }
    }
    Index_type uxlo, uxhi, uylo, uyhi, uzlo, uzhi;
    unpack_range(dir[0], ld_, uxlo, uxhi);
    unpack_range(dir[1], ld_, uylo, uyhi);
    unpack_range(dir[2], ld_, uzlo, uzhi);
    auto& ulist = unpack_lists_[static_cast<std::size_t>(d)];
    for (Index_type x = uxlo; x <= uxhi; ++x) {
      for (Index_type y = uylo; y <= uyhi; ++y) {
        for (Index_type z = uzlo; z <= uzhi; ++z) {
          ulist.push_back(x * stride_x + y * stride_y + z * stride_z);
        }
      }
    }
    if (plist.size() != ulist.size()) {
      throw std::logic_error("HaloTopology: pack/unpack list size mismatch");
    }
  }
}

Index_type HaloTopology::total_pack_elements() const {
  Index_type total = 0;
  for (const auto& list : pack_lists_) {
    total += static_cast<Index_type>(list.size());
  }
  return total;
}

}  // namespace rperf::comm
