// HaloTopology — virtual-rank halo-exchange decomposition.
//
// A periodic 2x2x2 grid of virtual ranks, each owning a (ld+2)^3 local
// array (interior ld^3 plus one ghost layer) for `num_vars` variables.
// For each of the 26 neighbor directions the topology precomputes
// RAJAPerf-style pack and unpack index lists; the suite's Comm kernels
// loop over these lists, which is exactly the computation the paper's
// HALO kernels measure. Message transport between virtual ranks is a
// buffer hand-off inside one address space (see DESIGN.md substitutions);
// the thread-based MiniComm provides real transport for examples/tests.
#pragma once

#include <array>
#include <vector>

#include "port/range.hpp"

namespace rperf::comm {

using port::Index_type;

class HaloTopology {
 public:
  static constexpr int kRanksPerDim = 2;
  static constexpr int kNumRanks = 8;
  static constexpr int kNumDirections = 26;

  /// local_dim: interior cells per dimension per rank (>= 1).
  explicit HaloTopology(Index_type local_dim);

  [[nodiscard]] Index_type local_dim() const { return ld_; }
  /// Cells per local array including ghosts: (ld+2)^3.
  [[nodiscard]] Index_type local_cells() const {
    return (ld_ + 2) * (ld_ + 2) * (ld_ + 2);
  }

  /// Direction vectors, one per neighbor (all 26 nonzero offsets).
  [[nodiscard]] const std::array<std::array<int, 3>, kNumDirections>&
  directions() const {
    return dirs_;
  }
  /// Index of the opposite direction (-d).
  [[nodiscard]] int opposite(int dir) const { return opposite_[static_cast<std::size_t>(dir)]; }
  /// Neighbor rank of `rank` in direction `dir` (periodic).
  [[nodiscard]] int neighbor(int rank, int dir) const {
    return neighbors_[static_cast<std::size_t>(rank)]
                     [static_cast<std::size_t>(dir)];
  }

  /// Local indices of interior boundary cells to pack for direction `dir`
  /// (identical for every rank; loop order matches the unpack list of the
  /// opposite direction).
  [[nodiscard]] const std::vector<Index_type>& pack_list(int dir) const {
    return pack_lists_[static_cast<std::size_t>(dir)];
  }
  /// Local indices of ghost cells receiving data from direction `dir`.
  [[nodiscard]] const std::vector<Index_type>& unpack_list(int dir) const {
    return unpack_lists_[static_cast<std::size_t>(dir)];
  }

  /// Total elements packed across all 26 directions (one variable).
  [[nodiscard]] Index_type total_pack_elements() const;

 private:
  Index_type ld_;
  std::array<std::array<int, 3>, kNumDirections> dirs_{};
  std::array<int, kNumDirections> opposite_{};
  std::array<std::array<int, kNumDirections>, kNumRanks> neighbors_{};
  std::array<std::vector<Index_type>, kNumDirections> pack_lists_;
  std::array<std::vector<Index_type>, kNumDirections> unpack_lists_;
};

}  // namespace rperf::comm
