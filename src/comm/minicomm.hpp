// Mini message-passing substrate — the MPI substitute.
//
// Two layers:
//
//  * `Mailbox` / `MiniComm`: a real in-process message-passing runtime.
//    Ranks run as threads; send/recv move tagged byte payloads through
//    per-rank mailboxes with blocking receive and a collective barrier.
//    Used by the halo-exchange example and the comm tests.
//
//  * `HaloTopology` (halo.hpp): a single-threaded virtual-rank decomposition
//    used by the suite's Comm kernels, which measure the *packing* patterns;
//    message transport there is a mailbox delivery between virtual ranks in
//    the same address space.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rperf::comm {

/// A tagged message between ranks.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<double> payload;
};

/// Thread-safe per-rank mailbox with blocking matched receive.
class Mailbox {
 public:
  void deliver(Message msg);
  /// Block until a message with the given source and tag arrives.
  Message receive(int source, int tag);
  /// Non-blocking probe.
  [[nodiscard]] bool has_message(int source, int tag);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

class MiniComm;

/// Handle for a nonblocking operation. Sends are buffered and complete
/// immediately; receive requests complete when a matching message arrives.
class Request {
 public:
  /// Nonblocking completion probe.
  [[nodiscard]] bool test();
  /// Block until complete; for receives, returns the payload (empty for
  /// sends). Calling wait() twice returns the same payload.
  std::vector<double> wait();

 private:
  friend class RankContext;
  Request() = default;
  Mailbox* mailbox_ = nullptr;  // null for completed/send requests
  int source_ = -1;
  int tag_ = 0;
  bool done_ = true;
  std::vector<double> payload_;
};

/// Wait on a set of requests; returns each request's payload in order.
std::vector<std::vector<double>> wait_all(std::vector<Request>& requests);

/// Per-rank handle passed to the rank function.
class RankContext {
 public:
  RankContext(MiniComm& comm, int rank) : comm_(comm), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Blocking standard send (buffered: returns after enqueue).
  void send(int dest, int tag, const double* data, std::size_t count);
  void send(int dest, int tag, const std::vector<double>& data) {
    send(dest, tag, data.data(), data.size());
  }
  /// Blocking matched receive.
  std::vector<double> recv(int source, int tag);
  /// Nonblocking send (buffered: the request is complete on return).
  Request isend(int dest, int tag, const double* data, std::size_t count);
  Request isend(int dest, int tag, const std::vector<double>& data) {
    return isend(dest, tag, data.data(), data.size());
  }
  /// Nonblocking receive: wait()/test() on the returned request.
  Request irecv(int source, int tag);
  /// Combined exchange with a partner (deadlock-free).
  std::vector<double> sendrecv(int partner, int tag, const double* data,
                               std::size_t count);
  /// Collective barrier over all ranks.
  void barrier();
  /// Sum-allreduce of one double across ranks.
  double allreduce_sum(double value);

 private:
  MiniComm& comm_;
  int rank_;
};

/// In-process communicator: runs `nranks` rank functions on threads.
class MiniComm {
 public:
  explicit MiniComm(int nranks);

  [[nodiscard]] int size() const { return nranks_; }

  /// Run one function per rank on its own thread; rethrows the first rank
  /// exception after joining all threads.
  void run(const std::function<void(RankContext&)>& rank_fn);

 private:
  friend class RankContext;

  Mailbox& mailbox(int rank);
  void barrier_wait();

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;

  std::mutex reduce_mutex_;
  double reduce_value_ = 0.0;
};

}  // namespace rperf::comm
