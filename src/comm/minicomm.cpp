#include "comm/minicomm.hpp"

#include <exception>

namespace rperf::comm {

void Mailbox::deliver(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->source == source && it->tag == tag) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    cv_.wait(lock);
  }
}

bool Mailbox::has_message(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : queue_) {
    if (m.source == source && m.tag == tag) return true;
  }
  return false;
}

bool Request::test() {
  if (done_) return true;
  if (mailbox_->has_message(source_, tag_)) {
    payload_ = mailbox_->receive(source_, tag_).payload;
    done_ = true;
  }
  return done_;
}

std::vector<double> Request::wait() {
  if (!done_) {
    payload_ = mailbox_->receive(source_, tag_).payload;
    done_ = true;
  }
  return payload_;
}

std::vector<std::vector<double>> wait_all(std::vector<Request>& requests) {
  std::vector<std::vector<double>> out;
  out.reserve(requests.size());
  for (Request& r : requests) out.push_back(r.wait());
  return out;
}

int RankContext::size() const { return comm_.size(); }

void RankContext::send(int dest, int tag, const double* data,
                       std::size_t count) {
  if (dest < 0 || dest >= comm_.size()) {
    throw std::out_of_range("send: bad destination rank");
  }
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.assign(data, data + count);
  comm_.mailbox(dest).deliver(std::move(msg));
}

std::vector<double> RankContext::recv(int source, int tag) {
  if (source < 0 || source >= comm_.size()) {
    throw std::out_of_range("recv: bad source rank");
  }
  return comm_.mailbox(rank_).receive(source, tag).payload;
}

std::vector<double> RankContext::sendrecv(int partner, int tag,
                                          const double* data,
                                          std::size_t count) {
  send(partner, tag, data, count);
  return recv(partner, tag);
}

Request RankContext::isend(int dest, int tag, const double* data,
                           std::size_t count) {
  send(dest, tag, data, count);  // buffered: already complete
  return Request{};
}

Request RankContext::irecv(int source, int tag) {
  if (source < 0 || source >= comm_.size()) {
    throw std::out_of_range("irecv: bad source rank");
  }
  Request r;
  r.mailbox_ = &comm_.mailbox(rank_);
  r.source_ = source;
  r.tag_ = tag;
  r.done_ = false;
  return r;
}

void RankContext::barrier() { comm_.barrier_wait(); }

double RankContext::allreduce_sum(double value) {
  // Phase 1: accumulate into the shared slot.
  {
    std::lock_guard<std::mutex> lock(comm_.reduce_mutex_);
    comm_.reduce_value_ += value;
  }
  comm_.barrier_wait();
  // Phase 2: everyone reads; a second barrier guards the reset.
  const double result = comm_.reduce_value_;
  comm_.barrier_wait();
  {
    std::lock_guard<std::mutex> lock(comm_.reduce_mutex_);
    comm_.reduce_value_ = 0.0;
  }
  comm_.barrier_wait();
  return result;
}

MiniComm::MiniComm(int nranks) : nranks_(nranks) {
  if (nranks < 1) throw std::invalid_argument("MiniComm: nranks must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& MiniComm::mailbox(int rank) {
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void MiniComm::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_count_ == nranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] { return barrier_generation_ != gen; });
  }
}

void MiniComm::run(const std::function<void(RankContext&)>& rank_fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks_));
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      RankContext ctx(*this, r);
      try {
        rank_fn(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace rperf::comm
