#include "faults/injector.hpp"

#include <limits>
#include <new>
#include <sstream>

namespace rperf::faults {

namespace {

bool matches(const FaultSpec& spec, const std::string& kernel) {
  return !kernel.empty() && (spec.kernel == "*" || spec.kernel == kernel);
}

FaultKind kind_from_string(const std::string& s) {
  if (s == "alloc") return FaultKind::Alloc;
  if (s == "throw") return FaultKind::Throw;
  if (s == "slow") return FaultKind::Slow;
  if (s == "corrupt") return FaultKind::Corrupt;
  throw std::invalid_argument("faults: unknown fault kind '" + s +
                              "' (want alloc|throw|slow|corrupt)");
}

/// Parse the optional ':' argument into the spec.
void parse_arg(FaultSpec& spec, const std::string& arg,
               const std::string& entry) {
  auto bad = [&](const char* why) {
    throw std::invalid_argument("faults: bad argument '" + arg + "' in '" +
                                entry + "': " + why);
  };
  if (arg.empty()) bad("empty argument after ':'");
  if (arg[0] == 'p') {
    // p-form: fire each occurrence with PERCENT% probability.
    std::size_t pos = 0;
    double pct = 0.0;
    try {
      pct = std::stod(arg.substr(1), &pos);
    } catch (const std::exception&) {
      bad("expected pPERCENT");
    }
    if (pos + 1 != arg.size() || pct < 0.0 || pct > 100.0) {
      bad("percent must be a number in [0, 100]");
    }
    spec.probability = pct / 100.0;
    return;
  }
  std::size_t pos = 0;
  long value = 0;
  try {
    value = std::stol(arg, &pos);
  } catch (const std::exception&) {
    bad("expected COUNT, DELAYms, or pPERCENT");
  }
  if (value < 0) bad("value must be >= 0");
  const std::string suffix = arg.substr(pos);
  if (suffix == "ms") {
    if (spec.kind != FaultKind::Slow) bad("'ms' only applies to slow@");
    spec.delay_ms = static_cast<int>(value);
  } else if (suffix.empty()) {
    if (spec.kind == FaultKind::Slow) {
      spec.delay_ms = static_cast<int>(value);
    } else {
      spec.budget = static_cast<int>(value);
    }
  } else {
    bad("unexpected trailing characters");
  }
}

}  // namespace

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::Alloc: return "alloc";
    case FaultKind::Throw: return "throw";
    case FaultKind::Slow: return "slow";
    case FaultKind::Corrupt: return "corrupt";
  }
  return "?";
}

std::vector<FaultSpec> Injector::parse(const std::string& spec) {
  std::string body = spec;
  if (body.rfind("faults=", 0) == 0) body = body.substr(7);
  std::vector<FaultSpec> out;
  if (body.empty()) return out;

  std::istringstream is(body);
  std::string entry;
  while (std::getline(is, entry, ',')) {
    if (entry.empty()) continue;
    const std::size_t at = entry.find('@');
    if (at == std::string::npos) {
      throw std::invalid_argument("faults: entry '" + entry +
                                  "' missing '@kernel'");
    }
    FaultSpec fs;
    fs.kind = kind_from_string(entry.substr(0, at));
    const std::size_t colon = entry.find(':', at + 1);
    fs.kernel = entry.substr(at + 1, colon == std::string::npos
                                         ? std::string::npos
                                         : colon - at - 1);
    if (fs.kernel.empty()) {
      throw std::invalid_argument("faults: entry '" + entry +
                                  "' has an empty kernel name");
    }
    if (colon != std::string::npos) {
      parse_arg(fs, entry.substr(colon + 1), entry);
    }
    if (fs.kind == FaultKind::Slow && fs.delay_ms == 0) {
      throw std::invalid_argument("faults: slow@ entry '" + entry +
                                  "' needs a delay, e.g. slow@K:50ms");
    }
    out.push_back(std::move(fs));
  }
  return out;
}

void Injector::configure(const std::string& spec, std::uint32_t seed) {
  specs_ = parse(spec);
  rng_state_ = seed ? seed : 1u;
}

void Injector::reset() {
  specs_.clear();
  current_cell_.clear();
  rng_state_ = 7u;
}

double Injector::next_unit() {
  rng_state_ = rng_state_ * 1664525u + 1013904223u;
  return (static_cast<double>(rng_state_ >> 8) + 0.5) / 16777216.0;
}

bool Injector::fire(FaultSpec& spec) {
  if (spec.budget == 0) return false;
  if (spec.probability < 1.0 && next_unit() >= spec.probability) return false;
  if (spec.budget > 0) --spec.budget;
  return true;
}

void Injector::on_lifecycle(const std::string& kernel) {
  for (auto& spec : specs_) {
    if (spec.kind == FaultKind::Throw && matches(spec, kernel) &&
        fire(spec)) {
      throw InjectedFault("injected fault: throw@" + kernel);
    }
  }
}

void Injector::on_alloc(std::size_t) {
  for (auto& spec : specs_) {
    if (spec.kind == FaultKind::Alloc && matches(spec, current_cell_) &&
        fire(spec)) {
      throw std::bad_alloc();
    }
  }
}

int Injector::slow_delay_ms(const std::string& kernel) {
  int delay = 0;
  for (auto& spec : specs_) {
    if (spec.kind == FaultKind::Slow && matches(spec, kernel) &&
        fire(spec)) {
      delay += spec.delay_ms;
    }
  }
  return delay;
}

long double Injector::corrupt_checksum(const std::string& kernel,
                                       long double checksum) {
  for (auto& spec : specs_) {
    if (spec.kind == FaultKind::Corrupt && matches(spec, kernel) &&
        fire(spec)) {
      return std::numeric_limits<long double>::quiet_NaN();
    }
  }
  return checksum;
}

Injector& injector() {
  static Injector instance;
  return instance;
}

}  // namespace rperf::faults
