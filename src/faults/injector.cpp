#include "faults/injector.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <limits>
#include <new>
#include <sstream>
#include <thread>

#include "sandbox/protocol.hpp"

namespace rperf::faults {

namespace {

bool matches(const FaultSpec& spec, const std::string& kernel) {
  return !kernel.empty() && (spec.kernel == "*" || spec.kernel == kernel);
}

FaultKind kind_from_string(const std::string& s) {
  if (s == "alloc") return FaultKind::Alloc;
  if (s == "throw") return FaultKind::Throw;
  if (s == "slow") return FaultKind::Slow;
  if (s == "corrupt") return FaultKind::Corrupt;
  if (s == "segv") return FaultKind::Segv;
  if (s == "abort") return FaultKind::Abort;
  if (s == "oom") return FaultKind::Oom;
  if (s == "hang") return FaultKind::Hang;
  if (s == "hbdrop") return FaultKind::HeartbeatDrop;
  if (s == "protocorrupt") return FaultKind::ProtocolCorrupt;
  if (s == "shortwrite") return FaultKind::ShortWrite;
  if (s == "enospc") return FaultKind::Enospc;
  if (s == "fsyncfail") return FaultKind::FsyncFail;
  if (s == "tornseg") return FaultKind::TornSeg;
  if (s == "idxcorrupt") return FaultKind::IndexCorrupt;
  throw std::invalid_argument(
      "faults: unknown fault kind '" + s +
      "' (want alloc|throw|slow|corrupt|segv|abort|oom|hang|hbdrop|"
      "protocorrupt|shortwrite|enospc|fsyncfail|tornseg|idxcorrupt)");
}

/// Exhaust memory the way a runaway kernel would: allocate and touch
/// chunks until the allocator fails (fast under RLIMIT_AS), with a hard
/// cap so an unlimited process still terminates deterministically. Exits
/// abruptly — no unwinding — mirroring a kernel OOM kill.
[[noreturn]] void simulate_oom() {
  constexpr std::size_t kChunk = 64u << 20;      // 64 MiB per allocation
  constexpr std::size_t kCap = 256u << 20;       // stop after 256 MiB
  for (std::size_t total = 0; total < kCap; total += kChunk) {
    auto* p = static_cast<volatile char*>(::operator new(kChunk, std::nothrow));
    if (p == nullptr) break;
    for (std::size_t i = 0; i < kChunk; i += 4096) p[i] = 1;  // fault pages
  }
  std::_Exit(sandbox::kOomExitCode);
}

/// Wedge the process like a deadlocked kernel: sleep in small increments
/// so SIGTERM/SIGKILL land promptly, with a 10-minute safety valve in
/// case no one ever kills us.
[[noreturn]] void simulate_hang() {
  for (int i = 0; i < 6000; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::_Exit(1);
}

/// Parse the optional ':' argument into the spec.
void parse_arg(FaultSpec& spec, const std::string& arg,
               const std::string& entry) {
  auto bad = [&](const char* why) {
    throw std::invalid_argument("faults: bad argument '" + arg + "' in '" +
                                entry + "': " + why);
  };
  if (arg.empty()) bad("empty argument after ':'");
  if (arg[0] == 'p') {
    // p-form: fire each occurrence with PERCENT% probability.
    std::size_t pos = 0;
    double pct = 0.0;
    try {
      pct = std::stod(arg.substr(1), &pos);
    } catch (const std::exception&) {
      bad("expected pPERCENT");
    }
    if (pos + 1 != arg.size() || pct < 0.0 || pct > 100.0) {
      bad("percent must be a number in [0, 100]");
    }
    spec.probability = pct / 100.0;
    return;
  }
  std::size_t pos = 0;
  long value = 0;
  try {
    value = std::stol(arg, &pos);
  } catch (const std::exception&) {
    bad("expected COUNT, DELAYms, or pPERCENT");
  }
  if (value < 0) bad("value must be >= 0");
  const std::string suffix = arg.substr(pos);
  if (suffix == "ms") {
    if (spec.kind != FaultKind::Slow) bad("'ms' only applies to slow@");
    spec.delay_ms = static_cast<int>(value);
  } else if (suffix.empty()) {
    if (spec.kind == FaultKind::Slow) {
      spec.delay_ms = static_cast<int>(value);
    } else {
      spec.budget = static_cast<int>(value);
    }
  } else {
    bad("unexpected trailing characters");
  }
}

}  // namespace

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::Alloc: return "alloc";
    case FaultKind::Throw: return "throw";
    case FaultKind::Slow: return "slow";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Segv: return "segv";
    case FaultKind::Abort: return "abort";
    case FaultKind::Oom: return "oom";
    case FaultKind::Hang: return "hang";
    case FaultKind::HeartbeatDrop: return "hbdrop";
    case FaultKind::ProtocolCorrupt: return "protocorrupt";
    case FaultKind::ShortWrite: return "shortwrite";
    case FaultKind::Enospc: return "enospc";
    case FaultKind::FsyncFail: return "fsyncfail";
    case FaultKind::TornSeg: return "tornseg";
    case FaultKind::IndexCorrupt: return "idxcorrupt";
  }
  return "?";
}

bool is_process_fatal(FaultKind k) {
  return k == FaultKind::Segv || k == FaultKind::Abort ||
         k == FaultKind::Oom || k == FaultKind::Hang ||
         k == FaultKind::HeartbeatDrop || k == FaultKind::ProtocolCorrupt;
}

std::vector<FaultSpec> Injector::parse(const std::string& spec) {
  std::string body = spec;
  if (body.rfind("faults=", 0) == 0) body = body.substr(7);
  std::vector<FaultSpec> out;
  if (body.empty()) return out;

  std::istringstream is(body);
  std::string entry;
  while (std::getline(is, entry, ',')) {
    if (entry.empty()) continue;
    const std::size_t at = entry.find('@');
    if (at == std::string::npos) {
      throw std::invalid_argument("faults: entry '" + entry +
                                  "' missing '@kernel'");
    }
    FaultSpec fs;
    fs.kind = kind_from_string(entry.substr(0, at));
    const std::size_t colon = entry.find(':', at + 1);
    fs.kernel = entry.substr(at + 1, colon == std::string::npos
                                         ? std::string::npos
                                         : colon - at - 1);
    if (fs.kernel.empty()) {
      throw std::invalid_argument("faults: entry '" + entry +
                                  "' has an empty kernel name");
    }
    if (colon != std::string::npos) {
      parse_arg(fs, entry.substr(colon + 1), entry);
    }
    if (fs.kind == FaultKind::Slow && fs.delay_ms == 0) {
      throw std::invalid_argument("faults: slow@ entry '" + entry +
                                  "' needs a delay, e.g. slow@K:50ms");
    }
    out.push_back(std::move(fs));
  }
  return out;
}

void Injector::configure(const std::string& spec, std::uint32_t seed) {
  specs_ = parse(spec);
  rng_state_ = seed ? seed : 1u;
  fires_ = 0;
}

void Injector::reset() {
  specs_.clear();
  current_cell_.clear();
  rng_state_ = 7u;
  fires_ = 0;
}

double Injector::next_unit() {
  rng_state_ = rng_state_ * 1664525u + 1013904223u;
  return (static_cast<double>(rng_state_ >> 8) + 0.5) / 16777216.0;
}

bool Injector::fire(FaultSpec& spec) {
  if (spec.budget == 0) return false;
  if (spec.probability < 1.0 && next_unit() >= spec.probability) return false;
  if (spec.budget > 0) --spec.budget;
  ++fires_;
  return true;
}

void Injector::on_lifecycle(const std::string& kernel) {
  for (auto& spec : specs_) {
    if (!matches(spec, kernel)) continue;
    switch (spec.kind) {
      case FaultKind::Throw:
        if (fire(spec)) {
          throw InjectedFault("injected fault: throw@" + kernel);
        }
        break;
      case FaultKind::Segv:
        if (fire(spec)) std::raise(SIGSEGV);
        break;
      case FaultKind::Abort:
        if (fire(spec)) std::abort();
        break;
      case FaultKind::Oom:
        if (fire(spec)) simulate_oom();
        break;
      case FaultKind::Hang:
        if (fire(spec)) simulate_hang();
        break;
      default:
        break;  // alloc/slow/corrupt fire from their own hooks
    }
  }
}

void Injector::on_alloc(std::size_t) {
  for (auto& spec : specs_) {
    if (spec.kind == FaultKind::Alloc && matches(spec, current_cell_) &&
        fire(spec)) {
      throw std::bad_alloc();
    }
  }
}

int Injector::slow_delay_ms(const std::string& kernel) {
  int delay = 0;
  for (auto& spec : specs_) {
    if (spec.kind == FaultKind::Slow && matches(spec, kernel) &&
        fire(spec)) {
      delay += spec.delay_ms;
    }
  }
  return delay;
}

long double Injector::corrupt_checksum(const std::string& kernel,
                                       long double checksum) {
  for (auto& spec : specs_) {
    if (spec.kind == FaultKind::Corrupt && matches(spec, kernel) &&
        fire(spec)) {
      return std::numeric_limits<long double>::quiet_NaN();
    }
  }
  return checksum;
}

bool Injector::fire_wire_fault(FaultKind kind, const std::string& kernel) {
  if (kind != FaultKind::HeartbeatDrop && kind != FaultKind::ProtocolCorrupt) {
    return false;
  }
  for (auto& spec : specs_) {
    if (spec.kind == kind && matches(spec, kernel) && fire(spec)) {
      return true;
    }
  }
  return false;
}

bool Injector::fire_io_fault(FaultKind kind, const std::string& target) {
  if (kind != FaultKind::ShortWrite && kind != FaultKind::Enospc &&
      kind != FaultKind::FsyncFail && kind != FaultKind::TornSeg &&
      kind != FaultKind::IndexCorrupt) {
    return false;
  }
  for (auto& spec : specs_) {
    if (spec.kind == kind && matches(spec, target) && fire(spec)) {
      return true;
    }
  }
  return false;
}

std::string Injector::serialize_state() const {
  std::ostringstream os;
  os << rng_state_;
  for (const auto& spec : specs_) os << ',' << spec.budget;
  return os.str();
}

void Injector::deserialize_state(const std::string& state) {
  std::istringstream is(state);
  std::string field;
  std::vector<long> values;
  while (std::getline(is, field, ',')) {
    try {
      values.push_back(std::stol(field));
    } catch (const std::exception&) {
      return;  // malformed: keep current state
    }
  }
  if (values.size() != specs_.size() + 1) return;  // configure mismatch
  rng_state_ = static_cast<std::uint32_t>(values[0]);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    specs_[i].budget = static_cast<int>(values[i + 1]);
  }
}

void Injector::note_external_fire(FaultKind kind, const std::string& kernel) {
  for (auto& spec : specs_) {
    if (spec.kind == kind && matches(spec, kernel) && spec.budget > 0) {
      --spec.budget;
      ++fires_;
      return;
    }
  }
}

Injector& injector() {
  static Injector instance;
  return instance;
}

}  // namespace rperf::faults
