// Deterministic fault injector for the suite's failure paths.
//
// Production benchmark sweeps die in ways that are hard to reproduce on
// demand: an allocation failure at a large size factor, an exception from
// one variant, a silently corrupted result, a kernel that runs far past
// its budget. The injector arms any of those failures for specific
// kernels from a compact config string, so every recovery path in the
// executor (isolation, retry, timeout, checkpoint/resume) is testable:
//
//   faults=alloc@Stream_TRIAD:1,throw@Basic_DAXPY,slow@Lcals_HYDRO_2D:50ms,corrupt@Polybench_ADI
//
// Grammar (the leading "faults=" prefix is optional):
//   spec   := entry (',' entry)*
//   entry  := kind '@' kernel [':' arg]
//   kind   := 'alloc' | 'throw' | 'slow' | 'corrupt'
//           | 'segv' | 'abort' | 'oom' | 'hang'
//           | 'hbdrop' | 'protocorrupt'   (worker-pool wire faults)
//           | 'shortwrite' | 'enospc' | 'fsyncfail' | 'tornseg'
//           | 'idxcorrupt'                 (profile-store I/O faults)
//   kernel := full kernel name (e.g. Stream_TRIAD) or '*' for any;
//             for the I/O kinds this position names the store file class
//             being written ('journal', 'segment', or — for idxcorrupt —
//             'index') instead of a kernel
//   arg    := COUNT        fire at most COUNT times, then disarm
//                          (alloc/throw/corrupt; default: unlimited)
//           | DELAY 'ms'   slow: injected delay per measurement pass
//           | 'p' PERCENT  fire each occurrence with PERCENT% probability,
//                          driven by the seeded generator (deterministic
//                          for a fixed seed)
//
// Hooks fire only inside a ScopedCell (established by KernelBase::execute),
// so instrumentation-free callers (benches, examples) are never affected.
// All occurrence decisions come from armed counters plus a seeded LCG —
// no wall clock, no global randomness — so a given (spec, seed) pair
// always fails the exact same cells.
//
// The segv/abort/oom/hang kinds are PROCESS-FATAL: they kill or wedge the
// process that executes the kernel (SIGSEGV, SIGABRT, abrupt _Exit after
// exhausting allocations, a long sleep loop). They exist to exercise the
// rperf::sandbox worker-process path (--isolate=kernel|cell) and must not
// be armed for in-process execution unless dying is the desired outcome.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rperf::faults {

enum class FaultKind {
  Alloc,
  Throw,
  Slow,
  Corrupt,
  // Process-fatal kinds (sandbox coverage; see header comment).
  Segv,
  Abort,
  Oom,
  Hang,
  // Wire-level kinds (worker-pool coverage): queried explicitly by the
  // pooled worker loop via fire_wire_fault, never by on_lifecycle, so
  // they are inert outside --workers mode. 'hbdrop' silences the worker's
  // heartbeats and wedges it (the supervisor must detect the lost
  // liveness); 'protocorrupt' corrupts the CRC of the worker's next
  // result frame (the supervisor must detect the torn record instead of
  // mis-parsing it). Both leave the worker doomed, so they count as
  // process-fatal.
  HeartbeatDrop,
  ProtocolCorrupt,
  // Store-I/O kinds (rperf::store coverage): queried explicitly by the
  // profile store's file layer via fire_io_fault, beneath the record
  // framing, so every torn-write recovery path is drivable from the
  // fault grammar. 'shortwrite' makes the next append persist only a
  // prefix of its bytes; 'enospc' fails it outright (disk full);
  // 'fsyncfail' fails the durability barrier after the data landed;
  // 'tornseg' persists a prefix AND corrupts a byte inside it (a torn,
  // scribbled sector). None are process-fatal: the store latches failed
  // and the suite continues without durability.
  ShortWrite,
  Enospc,
  FsyncFail,
  TornSeg,
  // 'idxcorrupt' (target class "index") scribbles a byte inside the
  // footer index of the segment being sealed and leaves the manifest
  // stale. The *records* stay intact, so this must never surface as an
  // error: readers are required to detect the damaged index, warn, and
  // fall back to a full scan (the index fail-open contract). Not
  // process-fatal; the seal itself succeeds.
  IndexCorrupt,
};

/// True for kinds that terminate or wedge the executing process.
[[nodiscard]] bool is_process_fatal(FaultKind k);

[[nodiscard]] std::string to_string(FaultKind k);

struct FaultSpec {
  FaultKind kind = FaultKind::Throw;
  std::string kernel = "*";   ///< full kernel name or "*" (any kernel)
  int budget = -1;            ///< remaining firings; -1 = unlimited
  int delay_ms = 0;           ///< Slow: injected delay per pass
  double probability = 1.0;   ///< chance each occurrence fires (p-form)
};

/// Thrown by the Throw fault (and classified as RunStatus::Failed).
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Injector {
 public:
  /// Parse a fault spec string; throws std::invalid_argument on malformed
  /// input. An empty spec (or bare "faults=") yields no entries.
  [[nodiscard]] static std::vector<FaultSpec> parse(const std::string& spec);

  /// Arm the injector from a spec string. Replaces any previous config.
  void configure(const std::string& spec, std::uint32_t seed = 7u);
  /// Disarm everything.
  void reset();
  [[nodiscard]] bool active() const { return !specs_.empty(); }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  /// Faults fired by this process since configure() — includes external
  /// fires folded in via note_external_fire. Feeds the trace's
  /// "fault_fires" counter track. (Deliberately outside serialize_state:
  /// that format is pinned by the v1 pipe protocol; workers report their
  /// own counters instead.)
  [[nodiscard]] std::uint64_t fires() const { return fires_; }

  // ----- hooks (no-ops unless armed and inside a matching ScopedCell) -----
  /// Called at the top of KernelBase::execute; throws InjectedFault when a
  /// 'throw' fault fires for the kernel.
  void on_lifecycle(const std::string& kernel);
  /// Called by data_utils initialization; throws std::bad_alloc when an
  /// 'alloc' fault fires for the current cell.
  void on_alloc(std::size_t bytes);
  /// Milliseconds of delay to inject before a measurement pass (0 = none).
  [[nodiscard]] int slow_delay_ms(const std::string& kernel);
  /// Returns a corrupted (NaN) checksum when a 'corrupt' fault fires,
  /// otherwise returns `checksum` unchanged.
  [[nodiscard]] long double corrupt_checksum(const std::string& kernel,
                                             long double checksum);
  /// Explicit query for the wire-level kinds (HeartbeatDrop /
  /// ProtocolCorrupt): true when an armed spec of `kind` fires for
  /// `kernel`. Called by the pooled worker loop around each job; the act
  /// of sabotaging the wire is the caller's job (WorkerPool exposes the
  /// controls), keeping the injector free of transport knowledge.
  [[nodiscard]] bool fire_wire_fault(FaultKind kind,
                                     const std::string& kernel);
  /// Explicit query for the store-I/O kinds (ShortWrite / Enospc /
  /// FsyncFail / TornSeg): true when an armed spec of `kind` fires for
  /// `target` — the store file class ("journal" or "segment"), matched
  /// against the spec's kernel position ('*' matches both). Called by
  /// rperf::store's file layer around each write/fsync; sabotaging the
  /// file is the caller's job, keeping the injector free of I/O
  /// knowledge. Unlike on_lifecycle these fire outside any ScopedCell.
  [[nodiscard]] bool fire_io_fault(FaultKind kind, const std::string& target);

  // ----- state transfer (sandboxed execution) -----
  // A forked worker inherits the injector's armed state; these let the
  // parent fold the worker's consumption back in so budgets and the
  // probability stream progress across the whole sweep exactly as they
  // would in-process.
  /// Compact textual form of (rng state, per-spec remaining budgets).
  [[nodiscard]] std::string serialize_state() const;
  /// Restore state captured by serialize_state(); a spec-count mismatch
  /// (different configure) is ignored rather than corrupting budgets.
  void deserialize_state(const std::string& state);
  /// Record that a process-fatal fault of `kind` definitionally fired for
  /// `kernel` (the worker died that way and could not report): consume one
  /// budget unit from the first matching armed spec.
  void note_external_fire(FaultKind kind, const std::string& kernel);

  // ----- cell scope (used by ScopedCell) -----
  void begin_cell(const std::string& kernel) { current_cell_ = kernel; }
  void end_cell() { current_cell_.clear(); }
  [[nodiscard]] const std::string& current_cell() const {
    return current_cell_;
  }

 private:
  [[nodiscard]] bool fire(FaultSpec& spec);
  [[nodiscard]] double next_unit();

  std::vector<FaultSpec> specs_;
  std::string current_cell_;
  std::uint32_t rng_state_ = 7u;
  std::uint64_t fires_ = 0;
};

/// Process-wide injector instance (mirrors cali::default_channel()).
[[nodiscard]] Injector& injector();

/// RAII guard marking the (kernel, variant, tuning) cell currently
/// executing, so allocation hooks deep in data_utils know their kernel.
class ScopedCell {
 public:
  explicit ScopedCell(const std::string& kernel) {
    injector().begin_cell(kernel);
  }
  ~ScopedCell() { injector().end_cell(); }
  ScopedCell(const ScopedCell&) = delete;
  ScopedCell& operator=(const ScopedCell&) = delete;
};

}  // namespace rperf::faults
