// Buffer cache: memoizes initialized master datasets keyed by
// (pattern, n, params) so repeated variants of the same kernel get their
// inputs by blocked memcpy instead of regenerating the LCG stream.
//
// A sweep runs each kernel across up to six variants and multiple tunings;
// each cell calls init_data with the *same* (seed, n). The first call
// generates the dataset and stores a master copy; subsequent calls copy it.
// Because the generators are pure functions of (pattern, seed, n), cached
// and freshly generated buffers are bit-identical — the cache can never
// change a checksum, only how fast the bytes appear.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "mem/pool.hpp"

namespace rperf::mem {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t skipped = 0;       ///< datasets not stored (capacity/size)
  std::size_t stored_bytes = 0;
  std::size_t entries = 0;
};

class DataCache {
 public:
  /// Master copies below this element count aren't worth caching.
  static constexpr std::int64_t kMinElems = 4096;
  static constexpr std::size_t kDefaultCapacityBytes = 256ull << 20;

  /// dst[0, n) = the fill_random(seed) stream. Returns true when the data
  /// came from a cached master copy.
  bool fill_random(double* dst, std::int64_t n, std::uint32_t seed);

  /// dst[0, n) = the fill_int_random(lo, hi, seed) stream.
  bool fill_int_random(int* dst, std::int64_t n, int lo, int hi,
                       std::uint32_t seed);

  [[nodiscard]] CacheStats stats() const;
  void reset_stats();

  /// Drop every master copy (returns their chunks to the pool).
  void clear();

  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  void set_capacity_bytes(std::size_t bytes);

 private:
  enum class Pattern : std::uint8_t { Random, IntRandom };

  struct Key {
    Pattern pattern;
    std::int64_t n;
    std::uint64_t p0;  ///< seed
    std::uint64_t p1;  ///< packed (lo, hi) for IntRandom, 0 otherwise
    bool operator<(const Key& o) const {
      if (pattern != o.pattern) return pattern < o.pattern;
      if (n != o.n) return n < o.n;
      if (p0 != o.p0) return p0 < o.p0;
      return p1 < o.p1;
    }
  };

  template <typename T, typename Generate>
  bool lookup_or_fill(const Key& key, T* dst, std::int64_t n,
                      Generate&& generate);

  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::size_t capacity_bytes_ = kDefaultCapacityBytes;
  std::map<Key, std::vector<std::byte, PoolAllocator<std::byte>>> entries_;
  CacheStats stats_;
};

/// Process-wide dataset cache.
[[nodiscard]] DataCache& data_cache();

}  // namespace rperf::mem
