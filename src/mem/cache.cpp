#include "mem/cache.hpp"

#include "mem/fill.hpp"

namespace rperf::mem {

template <typename T, typename Generate>
bool DataCache::lookup_or_fill(const Key& key, T* dst, std::int64_t n,
                               Generate&& generate) {
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(T);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_ || n < kMinElems) {
      ++stats_.skipped;
    } else if (auto it = entries_.find(key); it != entries_.end()) {
      ++stats_.hits;
      copy_data(dst, reinterpret_cast<const T*>(it->second.data()), n);
      return true;
    }
  }

  generate(dst, n);

  if (n < kMinElems) return false;

  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return false;
  ++stats_.misses;
  if (entries_.count(key) != 0) return false;  // raced-in by another thread
  if (stats_.stored_bytes + bytes > capacity_bytes_) {
    ++stats_.skipped;
    return false;
  }
  std::vector<std::byte, PoolAllocator<std::byte>> master(bytes);
  copy_data(reinterpret_cast<T*>(master.data()), dst, n);
  entries_.emplace(key, std::move(master));
  stats_.stored_bytes += bytes;
  stats_.entries = entries_.size();
  return false;
}

bool DataCache::fill_random(double* dst, std::int64_t n, std::uint32_t seed) {
  if (n <= 0) return false;
  const Key key{Pattern::Random, n, seed, 0};
  return lookup_or_fill(key, dst, n, [seed](double* d, std::int64_t len) {
    mem::fill_random(d, len, seed);
  });
}

bool DataCache::fill_int_random(int* dst, std::int64_t n, int lo, int hi,
                                std::uint32_t seed) {
  if (n <= 0) return false;
  const std::uint64_t range =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) << 32) |
      static_cast<std::uint32_t>(hi);
  const Key key{Pattern::IntRandom, n, seed, range};
  return lookup_or_fill(key, dst, n, [lo, hi, seed](int* d, std::int64_t len) {
    mem::fill_int_random(d, len, lo, hi, seed);
  });
}

CacheStats DataCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DataCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.hits = 0;
  stats_.misses = 0;
  stats_.skipped = 0;
  // stored_bytes/entries describe current contents, not history: keep them.
  stats_.stored_bytes = 0;
  for (const auto& [key, master] : entries_) {
    stats_.stored_bytes += master.size();
  }
  stats_.entries = entries_.size();
}

void DataCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_.stored_bytes = 0;
  stats_.entries = 0;
}

void DataCache::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = on;
  if (!on) {
    entries_.clear();
    stats_.stored_bytes = 0;
    stats_.entries = 0;
  }
}

bool DataCache::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void DataCache::set_capacity_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_bytes_ = bytes;
}

DataCache& data_cache() {
  static DataCache instance;
  return instance;
}

}  // namespace rperf::mem
