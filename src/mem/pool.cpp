#include "mem/pool.hpp"

#include <algorithm>
#include <cstdio>

#include "faults/injector.hpp"

namespace rperf::mem {

namespace {

constexpr std::size_t kHeaderBytes = 64;  // keeps the user pointer 64-aligned
static_assert(kHeaderBytes >= sizeof(std::uint64_t) + sizeof(std::size_t));
static_assert(kHeaderBytes % Pool::kAlignment == 0);

struct RawHeader {
  std::uint64_t magic;
  std::size_t chunk_bytes;
};

RawHeader* header_of(void* user) {
  return reinterpret_cast<RawHeader*>(static_cast<char*>(user) - kHeaderBytes);
}

}  // namespace

Pool::~Pool() {
#ifdef RPERF_MEM_DIAG
  const PoolStats s = stats();
  std::fprintf(stderr,
               "[rperf::mem] pool high-water %zu bytes, reserved %zu bytes, "
               "%llu allocs (%llu reused, %llu from OS)\n",
               s.high_water_bytes, s.bytes_reserved(),
               static_cast<unsigned long long>(s.alloc_calls),
               static_cast<unsigned long long>(s.reuse_hits),
               static_cast<unsigned long long>(s.os_allocs));
#endif
  release();
}

std::size_t Pool::size_class_bytes(std::size_t bytes) {
  std::size_t c = kMinClassBytes;
  while (c < bytes) c <<= 1;
  return c;
}

std::size_t Pool::class_index(std::size_t class_bytes) {
  std::size_t idx = 0;
  for (std::size_t c = kMinClassBytes; c < class_bytes; c <<= 1) ++idx;
  return idx;
}

void* Pool::os_allocate(std::size_t class_bytes, std::uint64_t magic) {
  void* raw = ::operator new(kHeaderBytes + class_bytes,
                             std::align_val_t{kAlignment});
  auto* h = static_cast<RawHeader*>(raw);
  h->magic = magic;
  h->chunk_bytes = class_bytes;
  return static_cast<char*>(raw) + kHeaderBytes;
}

void Pool::os_free(void* raw) noexcept {
  ::operator delete(raw, std::align_val_t{kAlignment});
}

void* Pool::allocate(std::size_t bytes) {
  // Fault hook first: an injected alloc@KERNEL failure must throw before any
  // bookkeeping, exactly as a real OOM would.
  faults::injector().on_alloc(bytes);

  const std::size_t class_bytes = size_class_bytes(bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.alloc_calls;

  if (enabled_) {
    const std::size_t idx = class_index(class_bytes);
    if (idx < free_lists_.size() && !free_lists_[idx].empty()) {
      void* raw = free_lists_[idx].back();
      free_lists_[idx].pop_back();
      ++stats_.reuse_hits;
      stats_.bytes_free -= class_bytes;
      stats_.bytes_in_use += class_bytes;
      stats_.high_water_bytes =
          std::max(stats_.high_water_bytes, stats_.bytes_in_use);
      return static_cast<char*>(raw) + kHeaderBytes;
    }
  }

  void* user = os_allocate(class_bytes,
                           enabled_ ? kMagicPooled : kMagicPassthrough);
  ++stats_.os_allocs;
  stats_.bytes_in_use += class_bytes;
  stats_.high_water_bytes =
      std::max(stats_.high_water_bytes, stats_.bytes_in_use);
  return user;
}

void Pool::deallocate(void* p, std::size_t /*bytes*/) noexcept {
  if (p == nullptr) return;
  RawHeader* h = header_of(p);
  const std::size_t class_bytes = h->chunk_bytes;
  void* raw = h;

  std::lock_guard<std::mutex> lock(mutex_);
  stats_.bytes_in_use -= class_bytes;

  // Chunks born on the passthrough path — or any chunk when the pool is
  // currently disabled — go straight back to the OS.
  if (h->magic != kMagicPooled || !enabled_) {
    os_free(raw);
    return;
  }

  const std::size_t idx = class_index(class_bytes);
  if (free_lists_.size() <= idx) free_lists_.resize(idx + 1);
  free_lists_[idx].push_back(raw);
  stats_.bytes_free += class_bytes;
}

void Pool::release() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& list : free_lists_) {
    for (void* raw : list) os_free(raw);
    list.clear();
  }
  stats_.bytes_free = 0;
}

PoolStats Pool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Pool::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.high_water_bytes = stats_.bytes_in_use;
  stats_.alloc_calls = 0;
  stats_.reuse_hits = 0;
  stats_.os_allocs = 0;
}

void Pool::set_enabled(bool on) {
  bool drop = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drop = enabled_ && !on;
    enabled_ = on;
  }
  if (drop) release();  // disabled pool should hold no cached memory
}

bool Pool::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

Pool& pool() {
  static Pool instance;
  return instance;
}

}  // namespace rperf::mem
