#include "mem/fill.hpp"

#include <algorithm>
#include <cstring>

#include <omp.h>

#include "port/blocked.hpp"

namespace rperf::mem {

namespace {

constexpr std::uint32_t kA = 1664525u;
constexpr std::uint32_t kC = 1013904223u;

/// Affine composition: applying (a1,c1) then (a2,c2) is (a2*a1, a2*c1+c2).
struct Affine {
  std::uint32_t a = 1u;
  std::uint32_t c = 0u;
};

constexpr Affine compose(Affine first, Affine second) {
  return {second.a * first.a, second.a * first.c + second.c};
}

/// (A, C) composed with itself three more times: one 4-position LCG step.
constexpr Affine kStep4 = compose(compose(Affine{kA, kC}, Affine{kA, kC}),
                                  compose(Affine{kA, kC}, Affine{kA, kC}));

inline double unit_from_state(std::uint32_t state) {
  return (static_cast<double>(state >> 8) + 0.5) / 16777216.0;
}

/// Fill dst[begin, begin+len) of the stream seeded with `state0` (already
/// normalized: zero seeds map to 1). Element i carries the state after
/// i+1 LCG steps; four lanes stride the block so the multiply chains
/// overlap instead of serializing.
template <typename Emit>
void fill_block(std::uint32_t state0, std::int64_t begin, std::int64_t len,
                Emit&& emit) {
  std::uint32_t lane[4];
  const std::int64_t lanes = std::min<std::int64_t>(4, len);
  for (std::int64_t r = 0; r < lanes; ++r) {
    lane[r] = lcg_skip(state0, static_cast<std::uint64_t>(begin + r + 1));
  }
  const std::int64_t groups = len / 4;
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int64_t i = begin + g * 4;
    emit(i + 0, lane[0]);
    emit(i + 1, lane[1]);
    emit(i + 2, lane[2]);
    emit(i + 3, lane[3]);
    lane[0] = kStep4.a * lane[0] + kStep4.c;
    lane[1] = kStep4.a * lane[1] + kStep4.c;
    lane[2] = kStep4.a * lane[2] + kStep4.c;
    lane[3] = kStep4.a * lane[3] + kStep4.c;
  }
  for (std::int64_t r = 0; r < len % 4; ++r) {
    emit(begin + groups * 4 + r, lane[r]);
  }
}

/// Dispatch fixed-size blocks through the portability layer, in parallel
/// when worthwhile. The OpenMP path first-touches pages in the same thread
/// distribution the `omp parallel for` kernel variants will use.
template <typename BlockFn>
void for_each_block(std::int64_t n, BlockFn&& fn) {
  if (n >= kParallelFillThreshold && omp_get_max_threads() > 1) {
    port::forall_blocked<port::omp_parallel_for_exec>(n, kFillBlockElems, fn);
  } else {
    port::forall_blocked<port::seq_exec>(n, kFillBlockElems, fn);
  }
}

}  // namespace

std::uint32_t lcg_skip(std::uint32_t state, std::uint64_t steps) {
  Affine total;              // identity
  Affine step{kA, kC};       // one LCG step
  while (steps != 0) {
    if (steps & 1u) total = compose(total, step);
    step = compose(step, step);
    steps >>= 1;
  }
  return total.a * state + total.c;
}

void fill_random(double* dst, std::int64_t n, std::uint32_t seed) {
  if (n <= 0) return;
  const std::uint32_t state0 = seed ? seed : 1u;
  for_each_block(n, [&](std::int64_t begin, std::int64_t len) {
    fill_block(state0, begin, len, [&](std::int64_t i, std::uint32_t s) {
      dst[i] = unit_from_state(s);
    });
  });
}

void fill_int_random(int* dst, std::int64_t n, int lo, int hi,
                     std::uint32_t seed) {
  if (n <= 0) return;
  const std::uint32_t state0 = seed ? seed : 1u;
  const std::uint32_t span = static_cast<std::uint32_t>(hi - lo) + 1u;
  for_each_block(n, [&](std::int64_t begin, std::int64_t len) {
    fill_block(state0, begin, len, [&](std::int64_t i, std::uint32_t s) {
      dst[i] = lo + static_cast<int>(s % span);
    });
  });
}

void fill_const(double* dst, std::int64_t n, double value) {
  if (n <= 0) return;
  for_each_block(n, [&](std::int64_t begin, std::int64_t len) {
    std::fill(dst + begin, dst + begin + len, value);
  });
}

void fill_ramp(double* dst, std::int64_t n, double lo, double step) {
  if (n <= 0) return;
  for_each_block(n, [&](std::int64_t begin, std::int64_t len) {
    for (std::int64_t i = begin; i < begin + len; ++i) {
      dst[i] = lo + static_cast<double>(i) * step;
    }
  });
}

void copy_data(double* dst, const double* src, std::int64_t n) {
  if (n <= 0) return;
  for_each_block(n, [&](std::int64_t begin, std::int64_t len) {
    std::memcpy(dst + begin, src + begin,
                static_cast<std::size_t>(len) * sizeof(double));
  });
}

void copy_data(int* dst, const int* src, std::int64_t n) {
  if (n <= 0) return;
  for_each_block(n, [&](std::int64_t begin, std::int64_t len) {
    std::memcpy(dst + begin, src + begin,
                static_cast<std::size_t>(len) * sizeof(int));
  });
}

}  // namespace rperf::mem
