// Deterministic, block-decomposable data initialization primitives.
//
// The suite's original initializers walked a single 32-bit LCG stream
// serially; that chain dependency (~4 cycles/element) made setup a large
// fraction of sweep wall time. These fills produce *bit-identical* output
// to that serial stream while breaking the dependency two ways:
//
//   * jump-ahead: the LCG state after k steps is an affine function of the
//     initial state, computable in O(log k), so any block of the output can
//     be generated independently — fixed 4096-element blocks are dispatched
//     across OpenMP threads with a static schedule (which also first-touches
//     pages in the same distribution the OpenMP kernel variants use);
//   * lane interleave: within a block, four lanes each step the LCG by 4
//     positions (state' = A^4*state + C^4-composition), turning one serial
//     multiply chain into four independent ones the core can overlap.
//
// Because every element's value depends only on its index and the seed,
// results are identical for any thread count, any block schedule, and for
// cached vs freshly generated buffers.
#pragma once

#include <cstdint>

namespace rperf::mem {

/// Elements per independently generated block (also the checksum block
/// size in suite/data_utils). Fixed: changing it changes nothing about the
/// fill output, but keep it stable so blocking stays easy to reason about.
inline constexpr std::int64_t kFillBlockElems = 4096;

/// Below this many elements the fills skip the OpenMP dispatch entirely.
inline constexpr std::int64_t kParallelFillThreshold = 1 << 16;

/// LCG state after `steps` applications of s -> s*A + C (numerical recipes
/// constants, matching the suite's historical serial generator).
[[nodiscard]] std::uint32_t lcg_skip(std::uint32_t state, std::uint64_t steps);

/// dst[i] = deterministic uniform double in (0, 1), for i in [0, n).
/// Bit-identical to the historical serial `Lcg(seed).next_unit()` stream.
void fill_random(double* dst, std::int64_t n, std::uint32_t seed);

/// dst[i] = deterministic uniform int in [lo, hi]; bit-identical to the
/// historical serial `lo + Lcg(seed).next() % span` stream.
void fill_int_random(int* dst, std::int64_t n, int lo, int hi,
                     std::uint32_t seed);

/// dst[i] = value.
void fill_const(double* dst, std::int64_t n, double value);

/// dst[i] = lo + i * step (same expression as the historical serial ramp).
void fill_ramp(double* dst, std::int64_t n, double lo, double step);

/// Blocked copy (parallel for large n); plain memcpy semantics.
void copy_data(double* dst, const double* src, std::int64_t n);
void copy_data(int* dst, const int* src, std::int64_t n);

}  // namespace rperf::mem
