// rperf::mem — size-class pooled arena for the suite's working sets.
//
// Every (kernel, variant, tuning) cell of a sweep allocates its data in
// setUp and releases it in tearDown, so without pooling the same few
// megabyte-scale buffers are returned to the OS and re-faulted hundreds of
// times per run. The pool keeps freed chunks on per-size-class free lists
// ("reset, don't free"): a released chunk's pages stay mapped — and keep
// their NUMA first-touch placement — so the next cell's allocation of the
// same class is a pop, not an mmap.
//
//   * chunks are 64-byte aligned (cache line / AVX-512 friendly);
//   * size classes are powers of two from 64 bytes up, so a kernel whose
//     problem size wobbles a little between cells still reuses chunks;
//   * stats track bytes in use, reserved bytes, high-water marks, and
//     free-list reuse hits (surfaced per cell as `pool_hit` and per run in
//     profile metadata);
//   * the PR-1 fault injector's `alloc@KERNEL` hook is routed through
//     `Pool::allocate`, so injected allocation failures keep firing on the
//     exact same code path real ones would take;
//   * `set_enabled(false)` degrades to plain aligned new/delete (the
//     pre-pool behavior) — used by bench/sweep_throughput to measure the
//     pooled-vs-legacy delta. Each chunk carries a header naming the path
//     that produced it, so flipping the mode mid-process never mismatches
//     allocate/deallocate pairs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

namespace rperf::mem {

struct PoolStats {
  std::size_t bytes_in_use = 0;     ///< live chunk bytes (rounded to class)
  std::size_t bytes_free = 0;       ///< bytes parked on free lists
  std::size_t high_water_bytes = 0; ///< max bytes_in_use observed
  std::uint64_t alloc_calls = 0;
  std::uint64_t reuse_hits = 0;     ///< allocations served from a free list
  std::uint64_t os_allocs = 0;      ///< allocations that hit operator new

  [[nodiscard]] std::size_t bytes_reserved() const {
    return bytes_in_use + bytes_free;
  }
  [[nodiscard]] double reuse_rate() const {
    return alloc_calls == 0
               ? 0.0
               : static_cast<double>(reuse_hits) /
                     static_cast<double>(alloc_calls);
  }
};

class Pool {
 public:
  static constexpr std::size_t kAlignment = 64;
  static constexpr std::size_t kMinClassBytes = 64;

  Pool() = default;
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Bytes actually reserved for a request: next power of two >= max(bytes,
  /// kMinClassBytes).
  [[nodiscard]] static std::size_t size_class_bytes(std::size_t bytes);

  /// 64-byte-aligned chunk of at least `bytes` bytes. Fires the fault
  /// injector's alloc hook (so alloc@KERNEL specs throw std::bad_alloc from
  /// here), then serves from the matching free list when possible.
  void* allocate(std::size_t bytes);

  /// Return a chunk. Pooled chunks go back on their free list; chunks
  /// allocated while the pool was disabled are freed to the OS.
  void deallocate(void* p, std::size_t bytes) noexcept;

  /// Trim: free every cached (free-list) chunk to the OS. Live chunks are
  /// unaffected.
  void release();

  [[nodiscard]] PoolStats stats() const;
  /// Zero the counters; high-water restarts from the current in-use bytes.
  void reset_stats();

  /// Disabled = plain aligned new/delete per call (legacy behavior); the
  /// fault hook and stats still fire. Chunks already on free lists are
  /// released.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

 private:
  struct Header {
    std::uint64_t magic = 0;
    std::size_t chunk_bytes = 0;  ///< rounded (size-class) payload bytes
  };
  static constexpr std::uint64_t kMagicPooled = 0x52504D454D504Cull;
  static constexpr std::uint64_t kMagicPassthrough = 0x52504D454D5054ull;

  [[nodiscard]] static std::size_t class_index(std::size_t class_bytes);
  [[nodiscard]] static void* os_allocate(std::size_t class_bytes,
                                         std::uint64_t magic);
  static void os_free(void* raw) noexcept;

  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::vector<std::vector<void*>> free_lists_;  ///< raw (header) pointers
  PoolStats stats_;
};

/// Process-wide pool (mirrors cali::default_channel()).
[[nodiscard]] Pool& pool();

/// std::allocator adapter over the process-wide pool. Also skips value-
/// initialization of trivial element types on resize: pooled buffers are
/// always overwritten by an init_data* call, so the zeroing pass the
/// default allocator pays is pure waste.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(pool().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool().deallocate(p, n * sizeof(T));
  }

  template <typename U>
  void construct(U* p) {
    ::new (static_cast<void*>(p)) U;  // default-init: no zero fill
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

template <typename T, typename U>
bool operator==(const PoolAllocator<T>&, const PoolAllocator<U>&) noexcept {
  return true;
}
template <typename T, typename U>
bool operator!=(const PoolAllocator<T>&, const PoolAllocator<U>&) noexcept {
  return false;
}

}  // namespace rperf::mem
