file(REMOVE_RECURSE
  "CMakeFiles/portability_study.dir/portability_study.cpp.o"
  "CMakeFiles/portability_study.dir/portability_study.cpp.o.d"
  "portability_study"
  "portability_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portability_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
