# Empty dependencies file for portability_study.
# This may be replaced when dependencies are built.
