file(REMOVE_RECURSE
  "CMakeFiles/whatif_machine.dir/whatif_machine.cpp.o"
  "CMakeFiles/whatif_machine.dir/whatif_machine.cpp.o.d"
  "whatif_machine"
  "whatif_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
