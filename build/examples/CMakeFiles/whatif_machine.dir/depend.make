# Empty dependencies file for whatif_machine.
# This may be replaced when dependencies are built.
