file(REMOVE_RECURSE
  "CMakeFiles/roofline_explorer.dir/roofline_explorer.cpp.o"
  "CMakeFiles/roofline_explorer.dir/roofline_explorer.cpp.o.d"
  "roofline_explorer"
  "roofline_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roofline_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
