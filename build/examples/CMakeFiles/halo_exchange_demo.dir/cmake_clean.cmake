file(REMOVE_RECURSE
  "CMakeFiles/halo_exchange_demo.dir/halo_exchange_demo.cpp.o"
  "CMakeFiles/halo_exchange_demo.dir/halo_exchange_demo.cpp.o.d"
  "halo_exchange_demo"
  "halo_exchange_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_exchange_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
