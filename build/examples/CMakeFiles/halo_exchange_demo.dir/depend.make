# Empty dependencies file for halo_exchange_demo.
# This may be replaced when dependencies are built.
