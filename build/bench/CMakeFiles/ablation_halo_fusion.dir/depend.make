# Empty dependencies file for ablation_halo_fusion.
# This may be replaced when dependencies are built.
