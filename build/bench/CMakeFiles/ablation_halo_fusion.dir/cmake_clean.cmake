file(REMOVE_RECURSE
  "CMakeFiles/ablation_halo_fusion.dir/ablation_halo_fusion.cpp.o"
  "CMakeFiles/ablation_halo_fusion.dir/ablation_halo_fusion.cpp.o.d"
  "ablation_halo_fusion"
  "ablation_halo_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_halo_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
