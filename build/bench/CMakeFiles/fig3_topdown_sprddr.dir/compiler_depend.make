# Empty compiler generated dependencies file for fig3_topdown_sprddr.
# This may be replaced when dependencies are built.
