file(REMOVE_RECURSE
  "CMakeFiles/fig3_topdown_sprddr.dir/fig3_topdown_sprddr.cpp.o"
  "CMakeFiles/fig3_topdown_sprddr.dir/fig3_topdown_sprddr.cpp.o.d"
  "fig3_topdown_sprddr"
  "fig3_topdown_sprddr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_topdown_sprddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
