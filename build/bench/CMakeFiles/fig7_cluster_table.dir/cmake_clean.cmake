file(REMOVE_RECURSE
  "CMakeFiles/fig7_cluster_table.dir/fig7_cluster_table.cpp.o"
  "CMakeFiles/fig7_cluster_table.dir/fig7_cluster_table.cpp.o.d"
  "fig7_cluster_table"
  "fig7_cluster_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cluster_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
