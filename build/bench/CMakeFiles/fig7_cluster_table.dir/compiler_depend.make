# Empty compiler generated dependencies file for fig7_cluster_table.
# This may be replaced when dependencies are built.
