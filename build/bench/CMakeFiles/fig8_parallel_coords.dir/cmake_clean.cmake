file(REMOVE_RECURSE
  "CMakeFiles/fig8_parallel_coords.dir/fig8_parallel_coords.cpp.o"
  "CMakeFiles/fig8_parallel_coords.dir/fig8_parallel_coords.cpp.o.d"
  "fig8_parallel_coords"
  "fig8_parallel_coords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_parallel_coords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
