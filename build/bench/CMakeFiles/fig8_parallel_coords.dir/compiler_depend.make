# Empty compiler generated dependencies file for fig8_parallel_coords.
# This may be replaced when dependencies are built.
