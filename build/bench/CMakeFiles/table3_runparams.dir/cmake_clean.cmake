file(REMOVE_RECURSE
  "CMakeFiles/table3_runparams.dir/table3_runparams.cpp.o"
  "CMakeFiles/table3_runparams.dir/table3_runparams.cpp.o.d"
  "table3_runparams"
  "table3_runparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_runparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
