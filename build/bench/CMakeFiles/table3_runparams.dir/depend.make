# Empty dependencies file for table3_runparams.
# This may be replaced when dependencies are built.
