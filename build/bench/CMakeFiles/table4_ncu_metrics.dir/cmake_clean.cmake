file(REMOVE_RECURSE
  "CMakeFiles/table4_ncu_metrics.dir/table4_ncu_metrics.cpp.o"
  "CMakeFiles/table4_ncu_metrics.dir/table4_ncu_metrics.cpp.o.d"
  "table4_ncu_metrics"
  "table4_ncu_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ncu_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
