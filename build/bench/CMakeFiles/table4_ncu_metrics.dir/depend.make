# Empty dependencies file for table4_ncu_metrics.
# This may be replaced when dependencies are built.
