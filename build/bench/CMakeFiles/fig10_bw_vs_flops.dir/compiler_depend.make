# Empty compiler generated dependencies file for fig10_bw_vs_flops.
# This may be replaced when dependencies are built.
