file(REMOVE_RECURSE
  "CMakeFiles/fig10_bw_vs_flops.dir/fig10_bw_vs_flops.cpp.o"
  "CMakeFiles/fig10_bw_vs_flops.dir/fig10_bw_vs_flops.cpp.o.d"
  "fig10_bw_vs_flops"
  "fig10_bw_vs_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bw_vs_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
