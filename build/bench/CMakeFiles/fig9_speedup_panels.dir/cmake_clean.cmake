file(REMOVE_RECURSE
  "CMakeFiles/fig9_speedup_panels.dir/fig9_speedup_panels.cpp.o"
  "CMakeFiles/fig9_speedup_panels.dir/fig9_speedup_panels.cpp.o.d"
  "fig9_speedup_panels"
  "fig9_speedup_panels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_speedup_panels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
