# Empty dependencies file for fig9_speedup_panels.
# This may be replaced when dependencies are built.
