file(REMOVE_RECURSE
  "CMakeFiles/fig5_roofline_v100.dir/fig5_roofline_v100.cpp.o"
  "CMakeFiles/fig5_roofline_v100.dir/fig5_roofline_v100.cpp.o.d"
  "fig5_roofline_v100"
  "fig5_roofline_v100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_roofline_v100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
