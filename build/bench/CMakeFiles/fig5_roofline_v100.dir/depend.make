# Empty dependencies file for fig5_roofline_v100.
# This may be replaced when dependencies are built.
