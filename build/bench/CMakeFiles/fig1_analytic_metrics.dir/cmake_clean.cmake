file(REMOVE_RECURSE
  "CMakeFiles/fig1_analytic_metrics.dir/fig1_analytic_metrics.cpp.o"
  "CMakeFiles/fig1_analytic_metrics.dir/fig1_analytic_metrics.cpp.o.d"
  "fig1_analytic_metrics"
  "fig1_analytic_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_analytic_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
