file(REMOVE_RECURSE
  "CMakeFiles/fig2_tma_hierarchy.dir/fig2_tma_hierarchy.cpp.o"
  "CMakeFiles/fig2_tma_hierarchy.dir/fig2_tma_hierarchy.cpp.o.d"
  "fig2_tma_hierarchy"
  "fig2_tma_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tma_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
