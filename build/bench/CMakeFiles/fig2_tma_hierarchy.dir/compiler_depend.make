# Empty compiler generated dependencies file for fig2_tma_hierarchy.
# This may be replaced when dependencies are built.
