# Empty compiler generated dependencies file for fig6_dendrogram.
# This may be replaced when dependencies are built.
