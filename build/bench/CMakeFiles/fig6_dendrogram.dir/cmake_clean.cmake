file(REMOVE_RECURSE
  "CMakeFiles/fig6_dendrogram.dir/fig6_dendrogram.cpp.o"
  "CMakeFiles/fig6_dendrogram.dir/fig6_dendrogram.cpp.o.d"
  "fig6_dendrogram"
  "fig6_dendrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dendrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
