file(REMOVE_RECURSE
  "CMakeFiles/fig4_topdown_sprhbm.dir/fig4_topdown_sprhbm.cpp.o"
  "CMakeFiles/fig4_topdown_sprhbm.dir/fig4_topdown_sprhbm.cpp.o.d"
  "fig4_topdown_sprhbm"
  "fig4_topdown_sprhbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_topdown_sprhbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
