# Empty compiler generated dependencies file for fig4_topdown_sprhbm.
# This may be replaced when dependencies are built.
