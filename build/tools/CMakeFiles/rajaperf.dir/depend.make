# Empty dependencies file for rajaperf.
# This may be replaced when dependencies are built.
