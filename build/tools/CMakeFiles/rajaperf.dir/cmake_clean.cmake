file(REMOVE_RECURSE
  "CMakeFiles/rajaperf.dir/rajaperf.cpp.o"
  "CMakeFiles/rajaperf.dir/rajaperf.cpp.o.d"
  "rajaperf"
  "rajaperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rajaperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
