# Empty dependencies file for rperf-report.
# This may be replaced when dependencies are built.
