file(REMOVE_RECURSE
  "CMakeFiles/rperf-report.dir/rperf_report.cpp.o"
  "CMakeFiles/rperf-report.dir/rperf_report.cpp.o.d"
  "rperf-report"
  "rperf-report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rperf-report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
