file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_all.dir/test_kernels_all.cpp.o"
  "CMakeFiles/test_kernels_all.dir/test_kernels_all.cpp.o.d"
  "test_kernels_all"
  "test_kernels_all.pdb"
  "test_kernels_all[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
