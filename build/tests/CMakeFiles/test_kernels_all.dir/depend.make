# Empty dependencies file for test_kernels_all.
# This may be replaced when dependencies are built.
