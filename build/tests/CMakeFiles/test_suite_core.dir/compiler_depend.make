# Empty compiler generated dependencies file for test_suite_core.
# This may be replaced when dependencies are built.
