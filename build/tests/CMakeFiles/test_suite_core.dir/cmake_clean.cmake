file(REMOVE_RECURSE
  "CMakeFiles/test_suite_core.dir/test_suite_core.cpp.o"
  "CMakeFiles/test_suite_core.dir/test_suite_core.cpp.o.d"
  "test_suite_core"
  "test_suite_core.pdb"
  "test_suite_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
