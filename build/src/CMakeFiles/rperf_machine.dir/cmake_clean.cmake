file(REMOVE_RECURSE
  "CMakeFiles/rperf_machine.dir/machine/machine.cpp.o"
  "CMakeFiles/rperf_machine.dir/machine/machine.cpp.o.d"
  "CMakeFiles/rperf_machine.dir/machine/predictor.cpp.o"
  "CMakeFiles/rperf_machine.dir/machine/predictor.cpp.o.d"
  "librperf_machine.a"
  "librperf_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rperf_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
