# Empty compiler generated dependencies file for rperf_machine.
# This may be replaced when dependencies are built.
