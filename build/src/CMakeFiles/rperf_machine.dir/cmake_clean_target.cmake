file(REMOVE_RECURSE
  "librperf_machine.a"
)
