file(REMOVE_RECURSE
  "librperf_instrument.a"
)
