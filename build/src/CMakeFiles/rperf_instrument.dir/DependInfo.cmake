
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instrument/channel.cpp" "src/CMakeFiles/rperf_instrument.dir/instrument/channel.cpp.o" "gcc" "src/CMakeFiles/rperf_instrument.dir/instrument/channel.cpp.o.d"
  "/root/repo/src/instrument/config.cpp" "src/CMakeFiles/rperf_instrument.dir/instrument/config.cpp.o" "gcc" "src/CMakeFiles/rperf_instrument.dir/instrument/config.cpp.o.d"
  "/root/repo/src/instrument/json.cpp" "src/CMakeFiles/rperf_instrument.dir/instrument/json.cpp.o" "gcc" "src/CMakeFiles/rperf_instrument.dir/instrument/json.cpp.o.d"
  "/root/repo/src/instrument/profile.cpp" "src/CMakeFiles/rperf_instrument.dir/instrument/profile.cpp.o" "gcc" "src/CMakeFiles/rperf_instrument.dir/instrument/profile.cpp.o.d"
  "/root/repo/src/instrument/report.cpp" "src/CMakeFiles/rperf_instrument.dir/instrument/report.cpp.o" "gcc" "src/CMakeFiles/rperf_instrument.dir/instrument/report.cpp.o.d"
  "/root/repo/src/instrument/trace.cpp" "src/CMakeFiles/rperf_instrument.dir/instrument/trace.cpp.o" "gcc" "src/CMakeFiles/rperf_instrument.dir/instrument/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
