# Empty dependencies file for rperf_instrument.
# This may be replaced when dependencies are built.
