file(REMOVE_RECURSE
  "CMakeFiles/rperf_instrument.dir/instrument/channel.cpp.o"
  "CMakeFiles/rperf_instrument.dir/instrument/channel.cpp.o.d"
  "CMakeFiles/rperf_instrument.dir/instrument/config.cpp.o"
  "CMakeFiles/rperf_instrument.dir/instrument/config.cpp.o.d"
  "CMakeFiles/rperf_instrument.dir/instrument/json.cpp.o"
  "CMakeFiles/rperf_instrument.dir/instrument/json.cpp.o.d"
  "CMakeFiles/rperf_instrument.dir/instrument/profile.cpp.o"
  "CMakeFiles/rperf_instrument.dir/instrument/profile.cpp.o.d"
  "CMakeFiles/rperf_instrument.dir/instrument/report.cpp.o"
  "CMakeFiles/rperf_instrument.dir/instrument/report.cpp.o.d"
  "CMakeFiles/rperf_instrument.dir/instrument/trace.cpp.o"
  "CMakeFiles/rperf_instrument.dir/instrument/trace.cpp.o.d"
  "librperf_instrument.a"
  "librperf_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rperf_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
