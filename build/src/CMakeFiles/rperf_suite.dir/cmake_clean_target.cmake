file(REMOVE_RECURSE
  "librperf_suite.a"
)
