# Empty compiler generated dependencies file for rperf_suite.
# This may be replaced when dependencies are built.
