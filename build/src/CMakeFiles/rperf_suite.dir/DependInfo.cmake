
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/algorithm/atomics.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/algorithm/atomics.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/algorithm/atomics.cpp.o.d"
  "/root/repo/src/kernels/algorithm/memops.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/algorithm/memops.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/algorithm/memops.cpp.o.d"
  "/root/repo/src/kernels/algorithm/scan_sort.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/algorithm/scan_sort.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/algorithm/scan_sort.cpp.o.d"
  "/root/repo/src/kernels/apps/del_dot_vec_2d.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/apps/del_dot_vec_2d.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/apps/del_dot_vec_2d.cpp.o.d"
  "/root/repo/src/kernels/apps/fem.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/apps/fem.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/apps/fem.cpp.o.d"
  "/root/repo/src/kernels/apps/fir.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/apps/fir.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/apps/fir.cpp.o.d"
  "/root/repo/src/kernels/apps/ltimes.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/apps/ltimes.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/apps/ltimes.cpp.o.d"
  "/root/repo/src/kernels/apps/lulesh.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/apps/lulesh.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/apps/lulesh.cpp.o.d"
  "/root/repo/src/kernels/apps/mesh3d.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/apps/mesh3d.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/apps/mesh3d.cpp.o.d"
  "/root/repo/src/kernels/basic/array_of_ptrs.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/array_of_ptrs.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/array_of_ptrs.cpp.o.d"
  "/root/repo/src/kernels/basic/copy8.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/copy8.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/copy8.cpp.o.d"
  "/root/repo/src/kernels/basic/daxpy.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/daxpy.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/daxpy.cpp.o.d"
  "/root/repo/src/kernels/basic/if_quad.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/if_quad.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/if_quad.cpp.o.d"
  "/root/repo/src/kernels/basic/indexlist.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/indexlist.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/indexlist.cpp.o.d"
  "/root/repo/src/kernels/basic/init3.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/init3.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/init3.cpp.o.d"
  "/root/repo/src/kernels/basic/init_view1d.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/init_view1d.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/init_view1d.cpp.o.d"
  "/root/repo/src/kernels/basic/mat_mat_shared.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/mat_mat_shared.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/mat_mat_shared.cpp.o.d"
  "/root/repo/src/kernels/basic/multi_reduce.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/multi_reduce.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/multi_reduce.cpp.o.d"
  "/root/repo/src/kernels/basic/nested_init.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/nested_init.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/nested_init.cpp.o.d"
  "/root/repo/src/kernels/basic/pi.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/pi.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/pi.cpp.o.d"
  "/root/repo/src/kernels/basic/reduce3_int.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/reduce3_int.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/reduce3_int.cpp.o.d"
  "/root/repo/src/kernels/basic/reduce_struct.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/reduce_struct.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/reduce_struct.cpp.o.d"
  "/root/repo/src/kernels/basic/trap_int.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/basic/trap_int.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/basic/trap_int.cpp.o.d"
  "/root/repo/src/kernels/comm/halo_kernels.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/comm/halo_kernels.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/comm/halo_kernels.cpp.o.d"
  "/root/repo/src/kernels/lcals/first_min.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/lcals/first_min.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/lcals/first_min.cpp.o.d"
  "/root/repo/src/kernels/lcals/hydro_2d.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/lcals/hydro_2d.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/lcals/hydro_2d.cpp.o.d"
  "/root/repo/src/kernels/lcals/predictors.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/lcals/predictors.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/lcals/predictors.cpp.o.d"
  "/root/repo/src/kernels/lcals/recurrences.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/lcals/recurrences.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/lcals/recurrences.cpp.o.d"
  "/root/repo/src/kernels/lcals/streams.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/lcals/streams.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/lcals/streams.cpp.o.d"
  "/root/repo/src/kernels/polybench/adi.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/polybench/adi.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/polybench/adi.cpp.o.d"
  "/root/repo/src/kernels/polybench/floyd_warshall.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/polybench/floyd_warshall.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/polybench/floyd_warshall.cpp.o.d"
  "/root/repo/src/kernels/polybench/matmuls.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/polybench/matmuls.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/polybench/matmuls.cpp.o.d"
  "/root/repo/src/kernels/polybench/matvec.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/polybench/matvec.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/polybench/matvec.cpp.o.d"
  "/root/repo/src/kernels/polybench/stencils.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/polybench/stencils.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/polybench/stencils.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/registry.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/registry.cpp.o.d"
  "/root/repo/src/kernels/stream/add.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/stream/add.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/stream/add.cpp.o.d"
  "/root/repo/src/kernels/stream/copy.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/stream/copy.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/stream/copy.cpp.o.d"
  "/root/repo/src/kernels/stream/dot.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/stream/dot.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/stream/dot.cpp.o.d"
  "/root/repo/src/kernels/stream/mul.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/stream/mul.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/stream/mul.cpp.o.d"
  "/root/repo/src/kernels/stream/triad.cpp" "src/CMakeFiles/rperf_suite.dir/kernels/stream/triad.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/kernels/stream/triad.cpp.o.d"
  "/root/repo/src/suite/data_utils.cpp" "src/CMakeFiles/rperf_suite.dir/suite/data_utils.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/suite/data_utils.cpp.o.d"
  "/root/repo/src/suite/executor.cpp" "src/CMakeFiles/rperf_suite.dir/suite/executor.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/suite/executor.cpp.o.d"
  "/root/repo/src/suite/kernel_base.cpp" "src/CMakeFiles/rperf_suite.dir/suite/kernel_base.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/suite/kernel_base.cpp.o.d"
  "/root/repo/src/suite/run_params.cpp" "src/CMakeFiles/rperf_suite.dir/suite/run_params.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/suite/run_params.cpp.o.d"
  "/root/repo/src/suite/types.cpp" "src/CMakeFiles/rperf_suite.dir/suite/types.cpp.o" "gcc" "src/CMakeFiles/rperf_suite.dir/suite/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rperf_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rperf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rperf_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
