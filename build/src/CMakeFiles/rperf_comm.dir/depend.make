# Empty dependencies file for rperf_comm.
# This may be replaced when dependencies are built.
