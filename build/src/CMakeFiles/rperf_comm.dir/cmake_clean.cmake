file(REMOVE_RECURSE
  "CMakeFiles/rperf_comm.dir/comm/halo.cpp.o"
  "CMakeFiles/rperf_comm.dir/comm/halo.cpp.o.d"
  "CMakeFiles/rperf_comm.dir/comm/minicomm.cpp.o"
  "CMakeFiles/rperf_comm.dir/comm/minicomm.cpp.o.d"
  "librperf_comm.a"
  "librperf_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rperf_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
