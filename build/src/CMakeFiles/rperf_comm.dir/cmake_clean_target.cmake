file(REMOVE_RECURSE
  "librperf_comm.a"
)
