
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/halo.cpp" "src/CMakeFiles/rperf_comm.dir/comm/halo.cpp.o" "gcc" "src/CMakeFiles/rperf_comm.dir/comm/halo.cpp.o.d"
  "/root/repo/src/comm/minicomm.cpp" "src/CMakeFiles/rperf_comm.dir/comm/minicomm.cpp.o" "gcc" "src/CMakeFiles/rperf_comm.dir/comm/minicomm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
