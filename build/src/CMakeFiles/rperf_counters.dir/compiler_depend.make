# Empty compiler generated dependencies file for rperf_counters.
# This may be replaced when dependencies are built.
