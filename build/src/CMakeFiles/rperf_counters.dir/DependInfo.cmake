
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/counters/ncu.cpp" "src/CMakeFiles/rperf_counters.dir/counters/ncu.cpp.o" "gcc" "src/CMakeFiles/rperf_counters.dir/counters/ncu.cpp.o.d"
  "/root/repo/src/counters/papi.cpp" "src/CMakeFiles/rperf_counters.dir/counters/papi.cpp.o" "gcc" "src/CMakeFiles/rperf_counters.dir/counters/papi.cpp.o.d"
  "/root/repo/src/counters/tma.cpp" "src/CMakeFiles/rperf_counters.dir/counters/tma.cpp.o" "gcc" "src/CMakeFiles/rperf_counters.dir/counters/tma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rperf_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
