file(REMOVE_RECURSE
  "CMakeFiles/rperf_counters.dir/counters/ncu.cpp.o"
  "CMakeFiles/rperf_counters.dir/counters/ncu.cpp.o.d"
  "CMakeFiles/rperf_counters.dir/counters/papi.cpp.o"
  "CMakeFiles/rperf_counters.dir/counters/papi.cpp.o.d"
  "CMakeFiles/rperf_counters.dir/counters/tma.cpp.o"
  "CMakeFiles/rperf_counters.dir/counters/tma.cpp.o.d"
  "librperf_counters.a"
  "librperf_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rperf_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
