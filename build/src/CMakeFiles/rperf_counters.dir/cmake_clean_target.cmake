file(REMOVE_RECURSE
  "librperf_counters.a"
)
