# Empty dependencies file for rperf_analysis.
# This may be replaced when dependencies are built.
