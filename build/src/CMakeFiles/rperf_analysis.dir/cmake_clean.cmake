file(REMOVE_RECURSE
  "CMakeFiles/rperf_analysis.dir/analysis/cluster.cpp.o"
  "CMakeFiles/rperf_analysis.dir/analysis/cluster.cpp.o.d"
  "CMakeFiles/rperf_analysis.dir/analysis/simulate.cpp.o"
  "CMakeFiles/rperf_analysis.dir/analysis/simulate.cpp.o.d"
  "CMakeFiles/rperf_analysis.dir/analysis/thicket.cpp.o"
  "CMakeFiles/rperf_analysis.dir/analysis/thicket.cpp.o.d"
  "librperf_analysis.a"
  "librperf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rperf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
