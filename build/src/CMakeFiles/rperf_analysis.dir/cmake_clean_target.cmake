file(REMOVE_RECURSE
  "librperf_analysis.a"
)
