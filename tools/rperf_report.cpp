// rperf-report — query .cali.json profiles (the cali-query substitute).
//
//   rperf-report DIR [--metric M] [--label KEY] [--stats NODE METRIC]
//                    [--groupby KEY] [--compare DIR2 [--threshold T]]
//                    [--hwc]
//   rperf-report --trace FILE [--top N] [--flamegraph]
//
// Examples:
//   rperf-report out/                       # time table, labelled by variant
//   rperf-report out/ --metric flops
//   rperf-report out/ --stats Stream_TRIAD time
//   rperf-report out/ --groupby tuning
//   rperf-report baseline/ --compare candidate/ --threshold 1.1
//   rperf-report --trace out/trace.json --top 10
//   rperf-report --trace out/trace.json --flamegraph > sweep.folded
//
// --hwc renders the hardware-counter view: per-kernel rates derived from
// the PAPI_* region metrics (IPC, branch mispredict rate, cache misses
// per kilo-instruction), TMA level-1 fractions via hwc::measured_tma, and
// the paper's Fig-6/7 Ward dendrogram over those TMA signatures. Works
// over a profile directory (metrics averaged across profiles, provenance
// from the hwc_source metadata) and over --store ledgers (per-cell
// CounterSet records, including multiplex coverage). Counter values may
// be measured (perf_event_open) or simulated — each row says which.
//
// When DIR holds a crashes.jsonl sidecar (written by rajaperf --isolate),
// a crash summary is appended: per cell, how many times its worker died,
// on which signal, and whether it is quarantined.
//
// --trace mode reads a Chrome/Perfetto trace written by rajaperf --trace:
// the default output is a summary (processes, threads, spans, counters,
// recorded overhead) plus the top-N regions by exclusive time;
// --flamegraph instead emits folded-stack lines ("proc;a;b usec") on
// stdout for flamegraph.pl or speedscope.
//
// --store mode queries the crash-consistent .rps profile store written
// by rajaperf --store: list runs (default), show one run (--run ID
// [--top N]), cross-run diff by kernel (--diff ID1 ID2), ledger-wide
// aggregations (--topn N, --groupby kernel|group|variant, --kernel K),
// and fsck (--fsck [--repair]) which scans every segment and the
// journal, reports, and optionally quarantines damage.
//
// Queries are planned through the store's index: the MANIFEST.rps
// catalog and per-segment footers answer listings and point lookups
// without decoding record payloads, bloom filters prune --kernel
// scans, and cold full scans fan out across --threads N workers. A
// missing or damaged index degrades to the full scan with a warning on
// stderr (fail open); damaged records still exit 5 (fail closed).
// --no-index forces the full-scan path everywhere.
//
// Exit codes: 0 ok; 1 read/analysis error; 2 usage error (including an
// ambiguous --diff run prefix); 3 regressions flagged by --compare;
// 4 crash records present in DIR (summary printed — the sweep
// "completed" only by containing worker crashes, so CI should look at
// the crash summary rather than trust the tables alone) or store fsck
// found a recoverable torn journal tail; 5 store or profile corrupt
// beyond repair (sealed segment damage, unparseable profile data);
// 70 unknown (non-std::exception) error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cluster.hpp"
#include "analysis/thicket.hpp"
#include "counters/perf_event.hpp"
#include "instrument/json.hpp"
#include "instrument/trace_export.hpp"
#include "store/query.hpp"
#include "store/store.hpp"

namespace {

/// Derived per-kernel counter row shared by the profile-dir and --store
/// --hwc views: rates a reader compares across kernels, not raw totals.
struct HwcRow {
  std::string label;
  double ipc = 0.0;          ///< instructions per cycle
  double br_msp_pct = 0.0;   ///< branch mispredicts per branch, percent
  double l2_per_ki = 0.0;    ///< PAPI_L2_DCM per kilo-instruction
  double l3_per_ki = 0.0;    ///< PAPI_L3_TCM per kilo-instruction
  rperf::machine::TMAFractions tma;  ///< measured_tma over the counters
  std::string source;
};

HwcRow hwc_row(const std::string& label,
               const std::map<std::string, double>& c,
               const std::string& source) {
  auto get = [&c](const char* key) {
    const auto it = c.find(key);
    return it == c.end() ? 0.0 : it->second;
  };
  HwcRow row;
  row.label = label;
  const double cyc = get("PAPI_TOT_CYC");
  const double ins = get("PAPI_TOT_INS");
  const double br = get("PAPI_BR_INS");
  row.ipc = cyc > 0.0 ? ins / cyc : 0.0;
  row.br_msp_pct = br > 0.0 ? get("PAPI_BR_MSP") / br * 100.0 : 0.0;
  row.l2_per_ki = ins > 0.0 ? get("PAPI_L2_DCM") / ins * 1e3 : 0.0;
  row.l3_per_ki = ins > 0.0 ? get("PAPI_L3_TCM") / ins * 1e3 : 0.0;
  row.tma = rperf::hwc::measured_tma(c);
  row.source = source;
  return row;
}

/// Render the --hwc tables: counter-derived rates, TMA level-1 fractions,
/// and (given >= 2 rows with TMA data) the paper's Fig-6/7 view — Ward
/// dendrogram over the 5-dim TMA signatures, cut at distance 1.4.
void print_hwc_rows(const std::vector<HwcRow>& rows) {
  namespace analysis = rperf::analysis;
  std::printf("  %-40s %8s %8s %9s %9s %s\n", "Kernel", "IPC", "BrMsp%",
              "L2DCM/kI", "L3TCM/kI", "source");
  for (const auto& r : rows) {
    std::printf("  %-40s %8.2f %8.2f %9.2f %9.2f %s\n", r.label.c_str(),
                r.ipc, r.br_msp_pct, r.l2_per_ki, r.l3_per_ki,
                r.source.c_str());
  }

  std::vector<const HwcRow*> with_tma;
  for (const auto& r : rows) {
    if (r.tma.sum() > 0.0) with_tma.push_back(&r);
  }
  if (with_tma.empty()) return;
  std::printf("\nTMA level-1 fractions (measured_tma over the counters):\n");
  std::printf("  %-40s %9s %9s %9s %9s %9s\n", "Kernel", "frontend",
              "badspec", "retiring", "core", "memory");
  for (const auto* r : with_tma) {
    std::printf("  %-40s %9.3f %9.3f %9.3f %9.3f %9.3f\n", r->label.c_str(),
                r->tma.frontend_bound, r->tma.bad_speculation,
                r->tma.retiring, r->tma.core_bound, r->tma.memory_bound);
  }
  if (with_tma.size() < 2) return;

  std::vector<std::vector<double>> points;
  std::vector<std::string> labels;
  for (const auto* r : with_tma) {
    points.push_back({r->tma.frontend_bound, r->tma.bad_speculation,
                      r->tma.retiring, r->tma.core_bound,
                      r->tma.memory_bound});
    labels.push_back(r->label);
  }
  const auto links = analysis::ward_linkage(points);
  const auto flat = analysis::fcluster(links, points.size(), 1.4);
  const int k = *std::max_element(flat.begin(), flat.end()) + 1;
  std::printf("\nWard clustering over TMA signatures "
              "(cut at 1.4: %d cluster(s)):\n%s",
              k, analysis::render_dendrogram(links, labels).c_str());
  for (int cluster = 0; cluster < k; ++cluster) {
    std::printf("  cluster %d:", cluster);
    for (std::size_t i = 0; i < flat.size(); ++i) {
      if (flat[i] == cluster) std::printf(" %s", labels[i].c_str());
    }
    std::printf("\n");
  }
}

/// Render DIR/crashes.jsonl (if present) and report whether any worker
/// crashes are on record.
bool print_crash_summary(const std::string& dir) {
  namespace json = rperf::json;
  const std::string path = dir + "/crashes.jsonl";
  if (!std::filesystem::exists(path)) return false;

  struct CellCrashes {
    int crashes = 0;
    std::string last_status;
    std::string last_signal;
    bool quarantined = false;
  };
  std::map<std::string, CellCrashes> cells;
  std::ifstream is(path);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    json::Value v;
    try {
      v = json::Value::parse(line);
    } catch (const json::JsonError&) {
      // Torn record from a run that died mid-append. Drop it, but say so:
      // the summary under-counts that cell's crashes.
      std::fprintf(stderr,
                   "warning: %s:%d: dropping truncated crash record\n",
                   path.c_str(), line_no);
      continue;
    }
    const std::string kind = v.string_or("kind", "crash");
    const std::string cell = v.string_or("kernel", "?") + " [" +
                             v.string_or("variant", "?") + "/" +
                             v.string_or("tuning", "?") + "]";
    CellCrashes& cc = cells[cell];
    if (kind == "crash") {
      ++cc.crashes;
      cc.last_status = v.string_or("status", "Crashed");
      cc.last_signal = v.string_or("signal_name", "");
      if (cc.last_signal.empty() && v.contains("exit_code")) {
        cc.last_signal =
            "exit " + std::to_string(
                          static_cast<int>(v.number_or("exit_code", 0.0)));
      }
      cc.quarantined = cc.quarantined || v.bool_or("quarantined", false);
    } else if (kind == "quarantine-skip") {
      cc.quarantined = true;
    }
  }
  if (cells.empty()) return false;

  std::printf("\nCrash summary (%s):\n", path.c_str());
  std::printf("  %-52s %8s %-12s %-10s %s\n", "Cell", "crashes", "last",
              "signal", "quarantined");
  for (const auto& [cell, cc] : cells) {
    std::printf("  %-52s %8d %-12s %-10s %s\n", cell.c_str(), cc.crashes,
                cc.last_status.c_str(), cc.last_signal.c_str(),
                cc.quarantined ? "yes" : "no");
  }
  return true;
}

/// `rperf-report --trace FILE [--top N] [--flamegraph]`.
int trace_mode(int argc, char** argv) {
  namespace cali = rperf::cali;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: rperf-report --trace FILE [--top N] "
                 "[--flamegraph]\n");
    return 2;
  }
  const std::string path = argv[2];
  std::size_t top_n = 10;
  bool flamegraph = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--flamegraph") == 0) {
      flamegraph = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    }
  }
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "error: cannot open trace file: %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const cali::ChromeTrace trace = cali::chrome_trace_parse(buffer.str());

  if (flamegraph) {
    // Folded stacks on stdout, ready for flamegraph.pl / speedscope.
    for (const auto& line : cali::fold_stacks(trace)) {
      std::printf("%s %.0f\n", line.stack.c_str(), line.usec);
    }
    return 0;
  }

  std::printf("%s: %zu process%s, %zu thread row%s, %zu spans, "
              "%zu counter samples\n",
              path.c_str(), trace.process_count(),
              trace.process_count() == 1 ? "" : "es", trace.thread_count(),
              trace.thread_count() == 1 ? "" : "s", trace.spans.size(),
              trace.counter_events);
  for (const auto& [pid, name] : trace.process_names) {
    std::printf("  pid %d: %s\n", pid, name.c_str());
  }
  const auto overhead = trace.meta.find("trace_overhead_pct");
  if (overhead != trace.meta.end()) {
    std::printf("recorded trace overhead: %s%% of wall time\n",
                overhead->second.c_str());
  }
  std::printf("\nTop %zu regions by exclusive time:\n", top_n);
  std::printf("  %-44s %12s %12s %8s\n", "Region", "excl (ms)", "incl (ms)",
              "count");
  for (const auto& r : cali::top_exclusive(trace, top_n)) {
    std::printf("  %-44s %12.3f %12.3f %8llu\n", r.name.c_str(),
                r.exclusive_us / 1e3, r.inclusive_us / 1e3,
                static_cast<unsigned long long>(r.count));
  }
  return 0;
}

/// --store DIR query modes against the crash-consistent .rps profile
/// store: list runs (default, straight from the index catalog), show
/// one run (--run [--top N], indexed point lookup), diff two runs by
/// kernel (--diff, one catalog pass), ledger-wide top cells (--topn),
/// grouped totals (--groupby kernel|group|variant), bloom-pruned kernel
/// search (--kernel), or scan/repair (--fsck [--repair]).
int store_mode(int argc, char** argv) {
  namespace store = rperf::store;
  if (argc < 3) {
    std::fprintf(stderr, "--store needs a store directory\n");
    return 2;
  }
  const std::string dir = argv[2];
  std::string run_prefix;
  std::string diff_a;
  std::string diff_b;
  std::string groupby;
  std::string kernel;
  std::size_t top_n = 10;
  std::size_t topn = 10;
  unsigned threads = 0;
  bool show_run = false;
  bool do_hwc = false;
  bool do_fsck = false;
  bool repair = false;
  bool do_topn = false;
  bool use_index = true;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--run") == 0 && i + 1 < argc) {
      run_prefix = argv[++i];
      show_run = true;
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::stoul(argv[++i]));
      show_run = true;
    } else if (std::strcmp(argv[i], "--diff") == 0 && i + 2 < argc) {
      diff_a = argv[++i];
      diff_b = argv[++i];
    } else if (std::strcmp(argv[i], "--topn") == 0 && i + 1 < argc) {
      topn = static_cast<std::size_t>(std::stoul(argv[++i]));
      do_topn = true;
    } else if (std::strcmp(argv[i], "--groupby") == 0 && i + 1 < argc) {
      groupby = argv[++i];
    } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
      kernel = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--hwc") == 0) {
      do_hwc = true;
    } else if (std::strcmp(argv[i], "--no-index") == 0) {
      use_index = false;
    } else if (std::strcmp(argv[i], "--fsck") == 0) {
      do_fsck = true;
    } else if (std::strcmp(argv[i], "--repair") == 0) {
      repair = true;
    } else {
      std::fprintf(stderr, "unknown --store option: %s\n", argv[i]);
      return 2;
    }
  }
  if (!groupby.empty() && groupby != "kernel" && groupby != "group" &&
      groupby != "variant") {
    std::fprintf(stderr,
                 "--groupby wants kernel, group, or variant (got %s)\n",
                 groupby.c_str());
    return 2;
  }

  if (do_fsck) {
    // Exit code is the state *found*: 0 clean, 4 recoverable (torn
    // journal tail), 5 corrupt beyond repair (sealed segment damage or
    // a valid footer contradicting the records). With --repair the
    // damage is quarantined, so a rerun reports clean.
    const store::FsckReport report = store::fsck(dir, repair, threads);
    const char* status = report.status == store::FsckStatus::Clean
                             ? "clean"
                             : report.status == store::FsckStatus::Recoverable
                                   ? "recoverable"
                                   : "corrupt";
    std::printf("fsck %s: %s\n", dir.c_str(), status);
    std::printf("  segments=%zu runs=%zu complete=%zu cells=%zu "
                "tail_bytes=%llu\n",
                report.segments, report.runs, report.complete_runs,
                report.committed_cells,
                static_cast<unsigned long long>(report.tail_bytes));
    for (const auto& note : report.notes) {
      std::printf("  %s\n", note.c_str());
    }
    if (report.repaired) std::printf("  repaired\n");
    switch (report.status) {
      case store::FsckStatus::Clean: return 0;
      case store::FsckStatus::Recoverable: return 4;
      case store::FsckStatus::Corrupt: return 5;
    }
    return 70;
  }

  store::StoreQuery query(dir, {threads, use_index});
  // Index degradations (unreadable footer, stale manifest, failed point
  // lookup) are warnings: the answer is still correct, just slower.
  std::size_t warned = 0;
  auto flush_warnings = [&query, &warned] {
    for (; warned < query.warnings().size(); ++warned) {
      std::fprintf(stderr, "warning: %s\n", query.warnings()[warned].c_str());
    }
  };
  flush_warnings();
  if (query.journal_tail_bytes() > 0) {
    std::fprintf(stderr,
                 "warning: torn journal tail of %llu byte(s) (uncommitted; "
                 "--fsck --repair quarantines it)\n",
                 static_cast<unsigned long long>(query.journal_tail_bytes()));
  }

  if (do_hwc) {
    // Hardware-counter records landed by rajaperf --hwc --store: one
    // typed CounterSet record per cell, reassembled into StoredRun
    // counters by the scanner (fsck structurally checks them the same
    // way). Shows derived rates plus the multiplexing coverage
    // (time_running / time_enabled) a reader needs to judge scaling.
    std::vector<store::StoredRun> runs;
    if (!run_prefix.empty()) {
      const std::optional<store::StoredRun> run = query.run(run_prefix);
      if (!run) {
        std::fprintf(stderr, "error: run %s not found in %s\n",
                     run_prefix.c_str(), dir.c_str());
        return 1;
      }
      runs.push_back(*run);
    } else {
      runs = query.all_runs();
    }
    flush_warnings();
    bool any = false;
    for (const auto& r : runs) {
      if (r.counters.empty()) continue;
      any = true;
      double overhead = 0.0;
      double mux_min = 1.0;
      std::vector<HwcRow> rows;
      for (const auto& c : r.counters) {
        rows.push_back(hwc_row(c.kernel + "/" + c.variant + "/" + c.tuning,
                               c.values, c.source));
        overhead += c.overhead_sec;
        if (c.time_enabled_ns > 0) {
          mux_min = std::min(mux_min, static_cast<double>(c.time_running_ns) /
                                          static_cast<double>(c.time_enabled_ns));
        }
      }
      std::printf("run %s: %zu counter record(s), read cost %.3f ms, "
                  "worst multiplex coverage %.0f%%\n",
                  r.run_id.c_str(), r.counters.size(), overhead * 1e3,
                  mux_min * 100.0);
      print_hwc_rows(rows);
    }
    if (!any) {
      std::fprintf(stderr,
                   "error: no counter records in %s (rerun rajaperf with "
                   "--hwc --store)\n",
                   dir.c_str());
      return 1;
    }
    return 0;
  }

  if (!diff_a.empty()) {
    // Both prefixes resolve against the one catalog (a single ledger
    // pass); an ambiguous prefix is a usage error listing the matches.
    std::vector<std::optional<store::StoredRun>> runs;
    try {
      runs = query.resolve({diff_a, diff_b});
    } catch (const store::AmbiguousRunPrefix& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    flush_warnings();
    if (!runs[0] || !runs[1]) {
      std::fprintf(stderr, "error: run %s not found in %s\n",
                   (!runs[0] ? diff_a : diff_b).c_str(), dir.c_str());
      return 1;
    }
    const store::StoredRun& a = *runs[0];
    const store::StoredRun& b = *runs[1];
    // Cross-run diff by (kernel, variant, tuning): passed cells only.
    std::map<std::string, double> base;
    for (const auto& c : a.cells) {
      if (c.status == "Passed" && c.time_per_rep_sec > 0.0) {
        base[c.kernel + "/" + c.variant + "/" + c.tuning] =
            c.time_per_rep_sec;
      }
    }
    std::printf("diff %s -> %s\n", a.run_id.c_str(), b.run_id.c_str());
    std::printf("  %-52s %12s %12s %8s\n", "Cell", "base (s)", "cand (s)",
                "ratio");
    for (const auto& c : b.cells) {
      if (c.status != "Passed" || c.time_per_rep_sec <= 0.0) continue;
      const std::string key = c.kernel + "/" + c.variant + "/" + c.tuning;
      const auto it = base.find(key);
      if (it == base.end()) continue;
      std::printf("  %-52s %12.3e %12.3e %8.3f\n", key.c_str(), it->second,
                  c.time_per_rep_sec, c.time_per_rep_sec / it->second);
    }
    return 0;
  }

  if (show_run) {
    const std::optional<store::StoredRun> run = query.run(run_prefix);
    flush_warnings();
    if (!run) {
      std::fprintf(stderr, "error: run %s not found in %s\n",
                   run_prefix.c_str(), dir.c_str());
      return 1;
    }
    std::printf("run %s (%s, %zu cells, %zu profiles)\n",
                run->run_id.c_str(),
                run->complete ? "complete" : "incomplete",
                run->cells.size(), run->profiles.size());
    for (const auto& [key, value] : run->config) {
      std::printf("  config %s=%s\n", key.c_str(), value.c_str());
    }
    for (const auto& [key, value] : run->trace_summary) {
      std::printf("  summary %s=%g\n", key.c_str(), value);
    }
    std::vector<const store::CellRecord*> cells;
    for (const auto& c : run->cells) {
      if (c.status == "Passed" && c.time_per_rep_sec > 0.0) {
        cells.push_back(&c);
      }
    }
    std::sort(cells.begin(), cells.end(),
              [](const store::CellRecord* x, const store::CellRecord* y) {
                return x->time_per_rep_sec > y->time_per_rep_sec;
              });
    if (cells.size() > top_n) cells.resize(top_n);
    std::printf("  top %zu cells by time per rep:\n", cells.size());
    for (const auto* c : cells) {
      std::printf("    %-50s %12.3e s\n",
                  (c->kernel + "/" + c->variant + "/" + c->tuning).c_str(),
                  c->time_per_rep_sec);
    }
    return 0;
  }

  if (!kernel.empty()) {
    // Bloom filters prune segments that provably lack the kernel; the
    // exact check below drops the filter's false positives.
    const std::vector<store::StoredRun> runs = query.runs_with_kernel(kernel);
    flush_warnings();
    struct Hit {
      const store::StoredRun* run;
      const store::CellRecord* cell;
    };
    std::vector<Hit> hits;
    for (const auto& r : runs) {
      for (const auto& c : r.cells) {
        if (c.kernel == kernel) hits.push_back({&r, &c});
      }
    }
    std::printf("kernel %s: %zu cell(s) in %s "
                "(%zu segment(s) bloom-pruned)\n",
                kernel.c_str(), hits.size(), dir.c_str(),
                query.last_bloom_pruned());
    for (const auto& h : hits) {
      std::printf("  run %s %-40s %12.3e s %s\n", h.run->run_id.c_str(),
                  (h.cell->variant + "/" + h.cell->tuning).c_str(),
                  h.cell->time_per_rep_sec, h.cell->status.c_str());
    }
    return 0;
  }

  if (!groupby.empty()) {
    // Grouped totals over every passed cell in the ledger. "group" is
    // the suite group: the kernel-name prefix before the first '_'.
    struct Agg {
      std::size_t cells = 0;
      double total = 0.0;
    };
    std::map<std::string, Agg> groups;
    for (const auto& r : query.all_runs()) {
      for (const auto& c : r.cells) {
        if (c.status != "Passed" || c.time_per_rep_sec <= 0.0) continue;
        const std::string key = groupby == "variant" ? c.variant
                                : groupby == "kernel"
                                    ? c.kernel
                                    : c.kernel.substr(0, c.kernel.find('_'));
        Agg& g = groups[key];
        ++g.cells;
        g.total += c.time_per_rep_sec;
      }
    }
    flush_warnings();
    std::vector<std::pair<std::string, Agg>> rows(groups.begin(),
                                                  groups.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& x, const auto& y) {
                return x.second.total > y.second.total;
              });
    if (do_topn && rows.size() > topn) rows.resize(topn);
    std::printf("%zu %s group(s) in %s\n", rows.size(), groupby.c_str(),
                dir.c_str());
    std::printf("  %-40s %8s %14s\n", "Group", "cells", "total (s)");
    for (const auto& [key, g] : rows) {
      std::printf("  %-40s %8zu %14.3e\n", key.c_str(), g.cells, g.total);
    }
    return 0;
  }

  if (do_topn) {
    // Ledger-wide top cells by time per rep, across every run.
    struct Row {
      const store::StoredRun* run;
      const store::CellRecord* cell;
    };
    std::vector<Row> rows;
    for (const auto& r : query.all_runs()) {
      for (const auto& c : r.cells) {
        if (c.status == "Passed" && c.time_per_rep_sec > 0.0) {
          rows.push_back({&r, &c});
        }
      }
    }
    flush_warnings();
    std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
      return x.cell->time_per_rep_sec > y.cell->time_per_rep_sec;
    });
    if (rows.size() > topn) rows.resize(topn);
    std::printf("top %zu cells across %zu run(s) in %s\n", rows.size(),
                query.all_runs().size(), dir.c_str());
    for (const auto& row : rows) {
      std::printf("  %-50s %12.3e s run=%s\n",
                  (row.cell->kernel + "/" + row.cell->variant + "/" +
                   row.cell->tuning)
                      .c_str(),
                  row.cell->time_per_rep_sec, row.run->run_id.c_str());
    }
    return 0;
  }

  // Listing comes straight from the catalog: with an intact index no
  // record payload is decoded (the journal is the only file scanned).
  std::printf("%zu run(s) in %s (%zu sealed segment(s), %zu indexed)\n",
              query.catalog().size(), dir.c_str(), query.segment_count(),
              query.indexed_segments());
  for (const auto& entry : query.catalog()) {
    std::printf("run %s complete=%s cells=%zu profiles=%zu file=%s\n",
                entry.meta.run_id.c_str(),
                entry.meta.complete ? "yes" : "no",
                static_cast<std::size_t>(entry.meta.cells),
                static_cast<std::size_t>(entry.meta.profiles),
                entry.file.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rperf;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: rperf-report DIR [--metric M] [--label KEY] "
                 "[--stats NODE METRIC] [--groupby KEY] [--hwc]\n"
                 "       rperf-report --trace FILE [--top N] "
                 "[--flamegraph]\n"
                 "       rperf-report --store DIR [--run ID] [--top N] "
                 "[--diff ID1 ID2] [--hwc]\n"
                 "                    [--topn N] "
                 "[--groupby kernel|group|variant] [--kernel K]\n"
                 "                    [--threads N] [--no-index]\n"
                 "       rperf-report --store DIR --fsck [--repair] "
                 "[--threads N]\n"
                 "exit codes: 0 ok, 1 read error, 2 usage (incl. ambiguous "
                 "--diff prefix), 3 regressions,\n"
                 "  4 crash records present in DIR / store recoverable "
                 "(torn journal tail),\n"
                 "  5 store or profile corrupt beyond repair, "
                 "70 unknown error\n");
    return 2;
  }
  try {
    if (std::strcmp(argv[1], "--trace") == 0) return trace_mode(argc, argv);
    if (std::strcmp(argv[1], "--store") == 0) return store_mode(argc, argv);
    const auto tk = thicket::Thicket::from_directory(argv[1]);
    std::string metric = "time";
    std::string label = "variant";
    std::string compare_dir;
    double threshold = 1.1;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--hwc") == 0) {
        // Hardware-counter view: per-kernel rates derived from the PAPI
        // region metrics (mean across profiles), TMA level-1 fractions,
        // and the Fig-6/7 Ward dendrogram over those TMA signatures.
        std::vector<std::string> papi;
        for (const auto& m : tk.metrics()) {
          if (m.rfind("PAPI_", 0) == 0) papi.push_back(m);
        }
        if (papi.empty()) {
          std::fprintf(stderr,
                       "error: no PAPI_* metrics in %s (rerun rajaperf "
                       "with --hwc)\n",
                       argv[1]);
          return 1;
        }
        // Counter provenance is run metadata; a directory mixing measured
        // and simulated profiles reports "mixed".
        std::string source;
        std::string reason;
        for (std::size_t p = 0; p < tk.num_profiles(); ++p) {
          const auto& md = tk.metadata(p);
          const auto src = md.find("hwc_source");
          if (src == md.end()) continue;
          if (source.empty()) {
            source = src->second;
          } else if (source != src->second) {
            source = "mixed";
          }
          const auto why = md.find("hwc_unavailable_reason");
          if (why != md.end() && reason.empty()) reason = why->second;
        }
        if (source.empty()) source = "unknown";
        std::printf("hardware counters over %zu profile(s) in %s "
                    "(source: %s)\n",
                    tk.num_profiles(), argv[1], source.c_str());
        if (!reason.empty()) std::printf("  degraded: %s\n", reason.c_str());
        std::vector<HwcRow> rows;
        for (const auto& node : tk.nodes()) {
          std::map<std::string, double> counters;
          for (const auto& m : papi) {
            const auto s = tk.stats(node, m);
            if (s.count > 0) counters[m] = s.mean;
          }
          if (!counters.empty()) rows.push_back(hwc_row(node, counters, source));
        }
        print_hwc_rows(rows);
        return 0;
      }
      if (std::strcmp(argv[i], "--metric") == 0 && i + 1 < argc) {
        metric = argv[++i];
      } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
        label = argv[++i];
      } else if (std::strcmp(argv[i], "--stats") == 0 && i + 2 < argc) {
        const std::string node = argv[i + 1];
        const std::string m = argv[i + 2];
        const auto s = tk.stats(node, m);
        std::printf("%s / %s over %zu profiles: mean=%g median=%g "
                    "stddev=%g min=%g max=%g\n",
                    node.c_str(), m.c_str(), s.count, s.mean, s.median,
                    s.stddev, s.min, s.max);
        return 0;
      } else if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
        compare_dir = argv[++i];
      } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
        threshold = std::stod(argv[++i]);
      } else if (std::strcmp(argv[i], "--groupby") == 0 && i + 1 < argc) {
        const std::string key = argv[i + 1];
        for (const auto& [value, sub] : tk.groupby(key)) {
          std::printf("=== %s = %s (%zu profiles) ===\n%s\n", key.c_str(),
                      value.c_str(), sub.num_profiles(),
                      sub.table(metric, label).c_str());
        }
        return 0;
      } else {
        std::fprintf(stderr, "unknown option: %s\n", argv[i]);
        return 2;
      }
    }
    if (!compare_dir.empty()) {
      const auto cand = thicket::Thicket::from_directory(compare_dir);
      const auto rows = thicket::compare(tk, cand, metric);
      std::printf("%s", thicket::render_comparison(rows).c_str());
      const auto flagged = thicket::outliers(rows, threshold);
      std::printf("\n%zu of %zu nodes outside [1/%.2f, %.2f]:\n",
                  flagged.size(), rows.size(), threshold, threshold);
      for (const auto& r : flagged) {
        std::printf("  %-34s %.3fx %s\n", r.node.c_str(), r.ratio,
                    r.ratio > 1.0 ? "REGRESSION" : "improvement");
      }
      return flagged.empty() ? 0 : 3;
    }
    std::printf("%zu profiles, %zu nodes, metrics:", tk.num_profiles(),
                tk.nodes().size());
    for (const auto& m : tk.metrics()) std::printf(" %s", m.c_str());
    std::printf("\n\n%s", tk.table(metric, label).c_str());

    // Pool summary (recorded by the executor as run metadata; identical in
    // every profile of a run): shows setup amortization at a glance.
    for (std::size_t i = 0; i < tk.num_profiles(); ++i) {
      const auto& md = tk.metadata(i);
      const auto reserved = md.find("pool_bytes_reserved");
      if (reserved == md.end()) continue;
      auto get = [&md](const char* key) {
        const auto it = md.find(key);
        return it == md.end() ? 0.0 : std::stod(it->second);
      };
      const double allocs = get("pool_alloc_calls");
      const double hits = get("pool_reuse_hits");
      std::printf("\npool: %.1f MiB reserved (high water %.1f MiB), "
                  "%.0f allocs, %.0f%% hit rate; cache: %.0f hits, "
                  "%.0f misses\n",
                  std::stod(reserved->second) / (1024.0 * 1024.0),
                  get("pool_high_water_bytes") / (1024.0 * 1024.0), allocs,
                  allocs > 0.0 ? hits / allocs * 100.0 : 0.0,
                  get("cache_hits"), get("cache_misses"));
      break;
    }
    // Worker-pool supervision summary (--workers runs): recycles and their
    // causes, so a report shows what crash containment cost the sweep.
    for (std::size_t i = 0; i < tk.num_profiles(); ++i) {
      const auto& md = tk.metadata(i);
      const auto workers = md.find("pool_workers");
      if (workers == md.end()) continue;
      auto get = [&md](const char* key) {
        const auto it = md.find(key);
        return it == md.end() ? 0.0 : std::stod(it->second);
      };
      const auto degraded = md.find("sandbox_degraded");
      std::printf("workers: %s pooled, %.0f spawned, %.0f recycled "
                  "(%.0f heartbeat timeouts, %.0f deadline kills, "
                  "%.0f corrupt frames), peak queue %.0f%s\n",
                  workers->second.c_str(), get("pool_spawns"),
                  get("pool_recycles"), get("pool_heartbeat_timeouts"),
                  get("pool_deadline_kills"), get("pool_corrupt_frames"),
                  get("pool_peak_queue_depth"),
                  degraded != md.end() && degraded->second == "true"
                      ? " [DEGRADED to in-process]"
                      : "");
      break;
    }
    // Crashes are part of the run's story: surface them and flag the exit
    // code so CI notices a sweep that "completed" by containing crashes.
    if (print_crash_summary(argv[1])) return 4;
    return 0;
  } catch (const store::CorruptError& e) {
    // Beyond-repair damage gets its own documented exit code so CI can
    // distinguish "store/profile destroyed" from a transient read error.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 5;
  } catch (const json::JsonError& e) {
    // A profile that no longer parses is corrupt data, not a missing
    // file: same beyond-repair contract as a damaged sealed segment.
    std::fprintf(stderr, "error: corrupt profile data: %s\n", e.what());
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "error: unknown exception\n");
    return 70;
  }
}
