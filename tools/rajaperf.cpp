// rajaperf — the standalone suite driver (the RAJAPerf executable).
//
//   rajaperf [run options] [--report timing|checksum|both] [--tunings]
//   rajaperf --list                       enumerate kernels
//   rajaperf --simulate MACHINE [...]     predicted run on a Table II system
//
// Examples:
//   rajaperf --groups Stream,Lcals --npasses 3 --outdir out/
//   rajaperf --kernels Basic_MAT_MAT_SHARED --tunings
//   rajaperf --simulate EPYC-MI250X
//
// Exit codes:
//   0  all cells passed, checksums consistent
//   1  cross-variant checksum mismatch
//   2  bad arguments / setup error (diagnostic on stderr)
//   4  one or more cells Failed / ChecksumInvalid / TimedOut / Crashed /
//      OutOfMemory / Killed / Skipped
//   5  unexpected runtime error (diagnostic on stderr)
//   70 unknown (non-std::exception) error
//   130 / 143  interrupted by SIGINT / SIGTERM (128+signal); reports print
//      and the checkpoint + profiles are flushed first, so --resume works
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "analysis/simulate.hpp"
#include "instrument/config.hpp"
#include "instrument/report.hpp"
#include "mem/cache.hpp"
#include "mem/pool.hpp"
#include "sandbox/sandbox.hpp"
#include "suite/executor.hpp"

namespace {

int list_kernels() {
  rperf::suite::RunParams params;
  params.size_factor = 0.001;
  std::printf("%-34s %-10s %-8s %s\n", "Kernel", "Group", "Cmplx",
              "Tunings");
  for (const auto& name : rperf::suite::all_kernel_names()) {
    const auto k = rperf::suite::make_kernel(name, params);
    std::string tunings;
    for (const auto& t : k->tunings()) {
      if (!tunings.empty()) tunings += ",";
      tunings += t;
    }
    std::printf("%-34s %-10s %-8s %s\n", k->name().c_str(),
                rperf::suite::to_string(k->group()).c_str(),
                rperf::suite::to_string(k->complexity()).c_str(),
                tunings.c_str());
  }
  return 0;
}

int simulate(const std::string& machine_name) {
  const auto& m = rperf::machine::by_shorthand(machine_name);
  const auto sims = rperf::analysis::simulate_suite(m);
  std::printf("Simulated suite on %s (%s), problem size %lld per node\n",
              m.shorthand.c_str(), m.architecture.c_str(),
              static_cast<long long>(rperf::analysis::kPaperProblemSize));
  std::printf("%-34s %12s %12s %12s %9s\n", "Kernel", "time (ms)", "GB/s",
              "GFLOP/s", "memB");
  for (const auto& r : sims) {
    std::printf("%-34s %12.4f %12.1f %12.1f %9.3f\n", r.kernel.c_str(),
                r.prediction.time_sec * 1e3,
                (r.prediction.read_bw + r.prediction.write_bw) / 1e9,
                r.prediction.flop_rate / 1e9,
                r.prediction.tma.memory_bound);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rperf;
  try {
    // Peel off driver-level options; forward the rest to RunParams.
    std::vector<const char*> forwarded = {argv[0]};
    std::string report = "timing";
    std::string caliper_config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--list") == 0) return list_kernels();
      if (std::strcmp(argv[i], "--simulate") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "--simulate needs a machine shorthand "
                               "(SPR-DDR, SPR-HBM, P9-V100, EPYC-MI250X)\n");
          return 2;
        }
        return simulate(argv[i + 1]);
      }
      if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
        report = argv[++i];
        continue;
      }
      if (std::strcmp(argv[i], "--caliper") == 0 && i + 1 < argc) {
        caliper_config = argv[++i];
        continue;
      }
      if (std::strcmp(argv[i], "--help") == 0) {
        std::printf("rajaperf — run the kernel suite\n%s"
                    "  --report R        timing | checksum | both\n"
                    "  --caliper CFG     Caliper-style config, e.g.\n"
                    "                    'runtime-report,min_percent=1'\n"
                    "  --list            list kernels and exit\n"
                    "  --simulate M      predicted suite run on machine M\n"
                    "exit codes: 0 ok, 1 checksum mismatch, 2 bad args,\n"
                    "  4 non-passed cells, 5 runtime error,\n"
                    "  130/143 interrupted (checkpoint flushed)\n",
                    suite::RunParams::usage().c_str());
        return 0;
      }
      forwarded.push_back(argv[i]);
    }

    suite::RunParams params = suite::RunParams::parse(
        static_cast<int>(forwarded.size()), forwarded.data());

    // Ctrl-C / SIGTERM: latch the signal (the executor skips remaining
    // cells and any live sandbox worker is terminated), then fall through
    // the normal reporting + checkpoint/profile flush and exit 128+sig.
    sandbox::install_interrupt_handlers();

    suite::Executor exec(params);
    exec.run();

    if (report == "timing" || report == "both") {
      std::printf("Timing (seconds per repetition):\n%s\n",
                  exec.timing_report().c_str());
    }
    if (report == "checksum" || report == "both") {
      std::printf("Checksums:\n%s\n", exec.checksum_report().c_str());
    }

    // Failure taxonomy: the sweep completes under --keep-going, but any
    // non-passed cell is reported and turns into a nonzero exit below.
    const bool all_passed = exec.all_passed();
    std::printf("%s", exec.status_report().c_str());

    // Memory-subsystem summary: how well setup amortized across the sweep.
    {
      const auto ps = mem::pool().stats();
      const auto cs = mem::data_cache().stats();
      std::printf("pool: %.1f MiB reserved (high water %.1f MiB), "
                  "%llu allocs, %.0f%% reused; cache: %llu hits, %llu "
                  "misses, %.1f MiB stored\n",
                  static_cast<double>(ps.bytes_reserved()) / (1024.0 * 1024.0),
                  static_cast<double>(ps.high_water_bytes) / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(ps.alloc_calls),
                  ps.reuse_rate() * 100.0,
                  static_cast<unsigned long long>(cs.hits),
                  static_cast<unsigned long long>(cs.misses),
                  static_cast<double>(cs.stored_bytes) / (1024.0 * 1024.0));
    }

    // Worker-pool supervision summary (--workers): what keeping the sweep
    // alive cost in respawned and recycled workers.
    if (params.workers > 0) {
      const auto& ws = exec.pool_stats();
      std::printf("workers: %d pooled, %zu spawned, %zu recycled "
                  "(%zu heartbeat timeouts, %zu deadline kills, "
                  "%zu corrupt frames), peak queue %zu\n",
                  params.workers, ws.spawns, ws.recycles,
                  ws.heartbeat_timeouts, ws.deadline_kills, ws.corrupt_frames,
                  ws.peak_queue_depth);
      if (exec.degraded()) {
        std::printf("WARNING: pool unavailable (%zu spawn failures); "
                    "sweep degraded to in-process execution\n",
                    ws.spawn_failures);
      }
    }

    std::string details;
    if (!exec.checksums_consistent(&details)) {
      std::fprintf(stderr, "CHECKSUM MISMATCH:\n%s", details.c_str());
      return 1;
    }
    std::printf("checksums consistent across passed results\n");
    exec.write_profiles();
    if (!params.output_dir.empty()) {
      std::printf("profiles written to %s/ (progress in %s)\n",
                  params.output_dir.c_str(), exec.progress_path().c_str());
    }

    // Profile-store landing summary (--store): where the run went and
    // under which content address, or why durability was lost.
    if (!params.store_dir.empty()) {
      if (!exec.store_run_id().empty() && exec.store_error().empty()) {
        std::printf("store: run %s landed in %s (%zu cells committed)\n",
                    exec.store_run_id().c_str(), params.store_dir.c_str(),
                    exec.store_cells());
      } else {
        std::printf("WARNING: store disabled: %s\n",
                    exec.store_error().c_str());
      }
    }

    // Hardware-counter summary (--hwc): where the values came from and
    // what reading them cost. The line shape "hwc overhead X.XX% of wall
    // time" is load-bearing: the perf_hwc_overhead smoke test parses it
    // and fails the build past 5%.
    if (params.hwc) {
      std::printf("hwc: source=%s, overhead %.2f%% of wall time%s%s\n",
                  exec.hwc_source().empty() ? "none" : exec.hwc_source().c_str(),
                  exec.hwc_overhead_pct(),
                  exec.hwc_reason().empty() ? "" : " — ",
                  exec.hwc_reason().c_str());
    }

    if (params.trace) {
      std::string trace_path = params.trace_path;
      if (trace_path.empty()) {
        trace_path = params.output_dir.empty()
                         ? "trace.json"
                         : params.output_dir + "/trace.json";
      }
      exec.write_trace(trace_path);
      std::printf("trace written to %s (%zu worker chunk%s, overhead "
                  "%.2f%% of wall time); open at ui.perfetto.dev\n",
                  trace_path.c_str(), exec.worker_trace_count(),
                  exec.worker_trace_count() == 1 ? "" : "s",
                  exec.trace_overhead_pct());
    }

    // Crash forensics hint: any Crashed/OutOfMemory/Killed cell has a
    // detailed record (signal, backtrace-bearing stderr tail, rusage)
    // in the crashes.jsonl sidecar.
    {
      const auto counts = exec.status_counts();
      const std::size_t contained = counts.at(suite::RunStatus::Crashed) +
                                    counts.at(suite::RunStatus::OutOfMemory) +
                                    counts.at(suite::RunStatus::Killed);
      if (contained > 0 && !exec.crashes_path().empty()) {
        std::printf("crash forensics for %zu cell%s in %s\n", contained,
                    contained == 1 ? "" : "s", exec.crashes_path().c_str());
      }
    }

    if (const int isig = sandbox::interrupt_signal(); isig != 0) {
      std::fprintf(stderr,
                   "interrupted by %s; checkpoint and profiles flushed "
                   "(resume with --resume)\n",
                   sandbox::signal_name(isig).c_str());
      return 128 + isig;
    }

    // Caliper-style config: a runtime-report spec prints the hierarchical
    // region report per executed profile.
    if (!caliper_config.empty()) {
      const cali::ConfigManager cm(caliper_config);
      if (cm.has("runtime-report")) {
        cali::ReportOptions opts;
        opts.min_percent =
            std::stod(cm.get("runtime-report").option_or("min_percent", "0"));
        opts.show_metrics =
            cm.get("runtime-report").option_or("metrics", "") == "true";
        for (const auto& prof : exec.profiles()) {
          std::printf("\n--- runtime-report: variant=%s tuning=%s ---\n%s",
                      prof.metadata.at("variant").c_str(),
                      prof.metadata.at("tuning").c_str(),
                      cali::runtime_report(prof, opts).c_str());
        }
      }
    }
    return all_passed ? 0 : 4;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n(see rajaperf --help)\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 5;
  } catch (...) {
    std::fprintf(stderr, "error: unknown exception\n");
    return 70;
  }
}
